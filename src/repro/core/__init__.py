"""Core abstractions of the self-similar methodology.

This package contains the paper's mathematical machinery, independent of
any particular environment or simulator:

* :mod:`repro.core.multiset` — the bag algebra agent states live in;
* :mod:`repro.core.functions` — distributed functions ``f`` and the
  idempotence / super-idempotence properties;
* :mod:`repro.core.objective` — variant (objective) functions ``h``;
* :mod:`repro.core.relation` — the constrained-optimization relations
  ``B`` and ``D``;
* :mod:`repro.core.algorithm` — the :class:`SelfSimilarAlgorithm` bundle;
* :mod:`repro.core.errors` — the library's exception hierarchy.
"""

from .algorithm import GroupStepRule, SelfSimilarAlgorithm
from .errors import (
    ConservationViolation,
    ImprovementViolation,
    NotSuperIdempotentError,
    ReproError,
    SimulationError,
    SpecificationError,
    VerificationError,
)
from .functions import (
    DistributedFunction,
    check_idempotent,
    check_single_element_super_idempotence,
    check_super_idempotent,
    find_idempotence_counterexample,
    find_super_idempotence_counterexample,
    from_commutative_operator,
    random_multisets,
)
from .multiset import Multiset, MutableMultiset
from .objective import ObjectiveFunction, SummationObjective
from .relation import OptimizationRelation, StepJudgement, StepKind

__all__ = [
    "GroupStepRule",
    "SelfSimilarAlgorithm",
    "ConservationViolation",
    "ImprovementViolation",
    "NotSuperIdempotentError",
    "ReproError",
    "SimulationError",
    "SpecificationError",
    "VerificationError",
    "DistributedFunction",
    "check_idempotent",
    "check_single_element_super_idempotence",
    "check_super_idempotent",
    "find_idempotence_counterexample",
    "find_super_idempotence_counterexample",
    "from_commutative_operator",
    "random_multisets",
    "Multiset",
    "MutableMultiset",
    "ObjectiveFunction",
    "SummationObjective",
    "OptimizationRelation",
    "StepJudgement",
    "StepKind",
]
