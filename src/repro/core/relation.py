"""The constrained-optimization relations ``B`` and ``D`` of §3.6.

The paper casts the design of ``R`` as constrained optimization: every
state-changing step of a group must conserve the distributed function ``f``
*for that group* and strictly decrease the objective ``h`` *for that
group*.  Formally::

    S_B  B  S'_B   ≡   f(S_B) = f(S'_B)  ∧  h(S_B) > h(S'_B)
    S_B  D  S'_B   ≡   (S_B B S'_B)  ∨  (S_B = S'_B)

A concrete algorithm ``R`` is correct when it *implements* ``D`` (proof
obligation 1), non-optimal states can escape (proof obligation 2) and the
local-to-global property holds (proof obligation 3, automatic when ``f`` is
super-idempotent and ``h`` has summation form).

:class:`OptimizationRelation` packages ``f`` and ``h`` and provides the
membership tests used by the algorithm wrapper, the verification layer and
the benchmarks; :class:`StepJudgement` explains *why* a step was rejected,
which makes failed assertions in tests and simulations actionable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from .functions import DistributedFunction
from .multiset import Multiset
from .objective import ObjectiveFunction

__all__ = ["StepKind", "StepJudgement", "OptimizationRelation", "STUTTER_JUDGEMENT"]


class StepKind(Enum):
    """Classification of a candidate group transition."""

    #: The group state did not change (always allowed: ``R`` is reflexive).
    STUTTER = "stutter"
    #: The state changed, ``f`` is conserved and ``h`` strictly decreased.
    IMPROVEMENT = "improvement"
    #: The state changed but ``f`` was not conserved.
    BREAKS_CONSERVATION = "breaks_conservation"
    #: The state changed, ``f`` is conserved, but ``h`` did not decrease.
    NOT_AN_IMPROVEMENT = "not_an_improvement"


@dataclass(frozen=True)
class StepJudgement:
    """The verdict on one candidate group transition."""

    kind: StepKind
    h_before: float | None = None
    h_after: float | None = None

    @property
    def is_valid_d_step(self) -> bool:
        """True when the transition is in the relation ``D``."""
        return self.kind in (StepKind.STUTTER, StepKind.IMPROVEMENT)

    @property
    def is_strict(self) -> bool:
        """True when the transition is in the strict relation ``B``."""
        return self.kind is StepKind.IMPROVEMENT

    def explain(self) -> str:
        """Return a one-line human-readable explanation of the verdict."""
        if self.kind is StepKind.STUTTER:
            return "stutter step (state unchanged)"
        if self.kind is StepKind.IMPROVEMENT:
            return f"improvement: h {self.h_before} -> {self.h_after}"
        if self.kind is StepKind.BREAKS_CONSERVATION:
            return "invalid: f(S_B) changed (conservation law violated)"
        return (
            f"invalid: state changed but h did not decrease "
            f"({self.h_before} -> {self.h_after})"
        )


#: Shared verdict for hot paths that can prove a stutter without judging
#: (element-wise unchanged states, skipped singleton steps).  Equal to any
#: freshly judged stutter; allocated once.
STUTTER_JUDGEMENT = StepJudgement(StepKind.STUTTER)


class OptimizationRelation:
    """The relation ``D`` induced by a distributed function and an objective."""

    def __init__(self, function: DistributedFunction, objective: ObjectiveFunction):
        self.function = function
        self.objective = objective

    def judge(
        self, before: Multiset | Iterable, after: Multiset | Iterable
    ) -> StepJudgement:
        """Classify the candidate transition from ``before`` to ``after``.

        The improvement criterion is evaluated directly from the ``h``
        values computed here (the definition
        :meth:`ObjectiveFunction.is_improvement` spells out), so each
        objective is priced exactly once per judged step.
        """
        before_bag = before if isinstance(before, Multiset) else Multiset(before)
        after_bag = after if isinstance(after, Multiset) else Multiset(after)

        if before_bag == after_bag:
            return STUTTER_JUDGEMENT
        if not self.function.conserves(before_bag, after_bag):
            return StepJudgement(StepKind.BREAKS_CONSERVATION)
        objective = self.objective
        h_before = objective(before_bag)
        h_after = objective(after_bag)
        minimum_decrease = objective.minimum_decrease
        if minimum_decrease > 0:
            improved = h_after <= h_before - minimum_decrease
        else:
            improved = h_after < h_before
        if improved:
            return StepJudgement(StepKind.IMPROVEMENT, h_before, h_after)
        return StepJudgement(StepKind.NOT_AN_IMPROVEMENT, h_before, h_after)

    def holds(self, before: Multiset | Iterable, after: Multiset | Iterable) -> bool:
        """Membership test for ``D`` (stutter or valid improvement)."""
        return self.judge(before, after).is_valid_d_step

    def holds_strict(
        self, before: Multiset | Iterable, after: Multiset | Iterable
    ) -> bool:
        """Membership test for the strict relation ``B``."""
        return self.judge(before, after).is_strict

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OptimizationRelation(f={self.function.name!r}, "
            f"h={self.objective.name!r})"
        )
