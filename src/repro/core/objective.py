"""Objective (variant) functions.

The methodology pairs the distributed function ``f`` with a *variant
function* ``h`` over agent states whose range is well-founded and which
every state-changing group step strictly decreases.  The combination —
conserve ``f``, decrease ``h`` — is the constrained-optimization relation
``D`` of §3.6.

Two properties of ``h`` matter:

* **well-foundedness** — there is no infinite strictly-decreasing chain, so
  agents cannot improve forever; in this library objective values are
  numbers bounded below (non-negative by default), which suffices for the
  integer-valued objectives of the paper's examples and is checked at run
  time for the real-valued hull objective via a minimum-decrease quantum;
* **local-to-global improvement** (property (7)) — improvements by disjoint
  groups compose into an improvement of the union.  The paper's Lemma (8)
  gives a simple sufficient condition: ``h`` has *summation form*,
  ``h(S_B) = Σ_{a ∈ B} h_a(S_a)``.  :class:`SummationObjective` implements
  exactly that form; :class:`ObjectiveFunction` is the general interface
  used by the verification layer to exhibit Figure 1's counterexample (an
  objective *without* summation form that violates (7)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from .errors import SpecificationError
from .multiset import Multiset

__all__ = ["ObjectiveFunction", "SummationObjective"]


@dataclass
class ObjectiveFunction:
    """A variant function ``h`` from multisets of agent states to numbers.

    Parameters
    ----------
    name:
        Human-readable name for logs and benchmark output.
    evaluate:
        The underlying function from a multiset of agent states to a number.
    lower_bound:
        A value that ``h`` can never go below.  Used as a cheap run-time
        guard for well-foundedness; the paper's integer objectives use 0.
    minimum_decrease:
        The smallest decrease that counts as an improvement.  Integer
        objectives use 1 (any strict decrease is at least 1); real-valued
        objectives (the hull perimeter objective) use a small positive
        quantum so that infinite chains of vanishing improvements — which
        would defeat well-foundedness — are rejected.
    summation_form:
        True when ``h`` is known to have the paper's summation form (8),
        hence satisfies the local-to-global improvement property.
    delta_fn:
        Optional incremental evaluator ``(removed, added) -> Δh``: given
        the states removed from and added to the bag, return the exact
        change of ``h``.  Only supply one when the arithmetic is exact
        (integers, Fractions, integer-valued floats), so that
        ``h_before + Δh`` is bit-identical to a full recomputation — the
        simulation engine relies on this to keep incremental runs
        byte-identical to full-recompute runs.
    """

    name: str
    evaluate: Callable[[Multiset], float]
    lower_bound: float = 0.0
    minimum_decrease: float = 0.0
    summation_form: bool = False
    delta_fn: Callable[[list, list], float] | None = None
    description: str = ""

    def __call__(self, states: Multiset | Iterable) -> float:
        bag = states if isinstance(states, Multiset) else Multiset(states)
        value = self.evaluate(bag)
        if value < self.lower_bound - 1e-12:
            raise SpecificationError(
                f"objective {self.name!r} returned {value}, below its declared "
                f"lower bound {self.lower_bound}"
            )
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObjectiveFunction({self.name!r})"

    @property
    def supports_delta(self) -> bool:
        """True when :meth:`delta` can evaluate changes in O(|delta|)."""
        return self.delta_fn is not None

    def delta(self, removed: list, added: list) -> float | None:
        """Exact change of ``h`` for a state delta, or None when unsupported.

        When supported, ``h(after) == h(before) + delta(removed, added)``
        holds *exactly* (not merely approximately): callers use this to
        maintain the objective incrementally without ever diverging from
        what a full recomputation would produce.
        """
        if self.delta_fn is None:
            return None
        return self.delta_fn(removed, added)

    def is_improvement(
        self, before: Multiset | Iterable, after: Multiset | Iterable
    ) -> bool:
        """Return True when moving from ``before`` to ``after`` strictly
        decreases the objective (by at least ``minimum_decrease``)."""
        h_before = self(before)
        h_after = self(after)
        if self.minimum_decrease > 0:
            return h_after <= h_before - self.minimum_decrease
        return h_after < h_before


class SummationObjective(ObjectiveFunction):
    """An objective of the paper's summation form ``h(S_B) = Σ h_a(S_a)``.

    Because the per-agent contributions add, improvements by disjoint groups
    always compose: this is the paper's Lemma (8) sufficient condition for
    the local-to-global improvement property, and the form used by every
    example in §4 (minimum, sum, second-smallest, sorting, convex hull).

    Parameters
    ----------
    name:
        Human-readable name.
    per_agent:
        The per-agent contribution ``h_a``.  It receives one agent state.
    offset:
        A constant added to the sum.  The hull objective
        ``|A|·P − Σ perimeter(V_a)`` is expressed with ``per_agent`` equal to
        ``P − perimeter(V_a)`` and offset 0, but an explicit offset is also
        supported for objectives stated with a global constant.
    exact_delta:
        True when the per-agent contributions add exactly (integers,
        Fractions, integer-valued floats below 2**53), so the objective
        may be maintained incrementally as ``h += Σh_a(added) −
        Σh_a(removed)`` with a result bit-identical to full recomputation.
        Leave False for genuinely real-valued contributions (the hull's
        perimeter slack), where floating-point addition is
        order-sensitive and incremental maintenance would drift.
    """

    def __init__(
        self,
        name: str,
        per_agent: Callable[[Hashable], float],
        lower_bound: float = 0.0,
        minimum_decrease: float = 0.0,
        offset=0,
        exact_delta: bool = False,
        description: str = "",
    ):
        self.per_agent = per_agent
        self.offset = offset
        self.exact_delta = exact_delta

        def evaluate(states: Multiset) -> float:
            # Start the sum from the integer 0 (not 0.0) so that exact
            # per-agent contributions — e.g. the averaging algorithm's
            # Fraction squares — are not silently coerced to floats, which
            # would make tiny-but-real improvements look like ties.
            return sum((per_agent(state) for state in states), offset)

        # The int-0 start matters for exactness here too: the delta must
        # use the same arithmetic as the full evaluation above.
        delta_fn = None
        if exact_delta:
            delta_fn = lambda removed, added: (
                sum((per_agent(state) for state in added), 0)
                - sum((per_agent(state) for state in removed), 0)
            )

        super().__init__(
            name=name,
            evaluate=evaluate,
            lower_bound=lower_bound,
            minimum_decrease=minimum_decrease,
            summation_form=True,
            delta_fn=delta_fn,
            description=description,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SummationObjective({self.name!r})"
