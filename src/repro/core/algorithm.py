"""The self-similar algorithm abstraction.

A *self-similar algorithm* is described once and executed by every group of
communicating agents, regardless of the group's size or the identities of
its members.  In the paper an algorithm is specified by:

* the distributed function ``f`` it computes (which every group step must
  conserve — the *group conservation law*);
* a well-founded objective ``h`` that every state-changing group step must
  strictly decrease;
* a concrete group step rule ``R`` refining the optimization relation ``D``.

:class:`SelfSimilarAlgorithm` bundles these together with the glue a
simulator needs: how to build an agent's initial state from an input value,
and how to read the computed answer back out of final states.  When
``enforce`` is on (the default) every group step is checked against ``D``
and violations raise immediately, so a buggy step rule cannot silently
corrupt an experiment — this mirrors the paper's proof obligation PO-1 as a
run-time contract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

from .errors import ConservationViolation, ImprovementViolation, SpecificationError
from .functions import DistributedFunction
from .multiset import Multiset
from .objective import ObjectiveFunction
from .relation import (
    STUTTER_JUDGEMENT,
    OptimizationRelation,
    StepJudgement,
    StepKind,
)

__all__ = ["GroupStepRule", "SelfSimilarAlgorithm"]


#: A group step rule receives the ordered list of states of the agents in a
#: group together with a random generator, and returns the new list of
#: states (same length, same order).  Returning the input unchanged is the
#: always-allowed stutter step.
GroupStepRule = Callable[[Sequence[Hashable], random.Random], Sequence[Hashable]]


@dataclass
class SelfSimilarAlgorithm:
    """A complete self-similar algorithm: ``f``, ``h`` and a step rule ``R``.

    Parameters
    ----------
    name:
        Human-readable name (used by benchmarks and error messages).
    function:
        The distributed function ``f`` the agents must compute.
    objective:
        The variant function ``h`` decreased by every state-changing step.
    group_step:
        The concrete step rule ``R``.  It is invoked on the states of the
        agents of one group (a list, preserving agent order within the
        group) and must return the group's new states.
    make_initial_state:
        Maps a problem input value (e.g. a sensor reading, an ``(index,
        value)`` pair, a coordinate) to the corresponding initial agent
        state.
    read_output:
        Maps a final multiset of agent states to the answer the problem
        asks for (e.g. the common minimum, the sum, the sorted array, the
        hull).  Used by tests, examples and benchmarks.
    super_idempotent:
        Whether ``f`` is (declared) super-idempotent.  Algorithms built on
        a non-super-idempotent ``f`` (the paper's "direct" second-smallest
        and circumscribing-circle formulations) set this to False; the
        verification layer and benchmarks use the flag to know that the
        local-to-global obligation is expected to fail.
    environment_requirement:
        A short machine-readable tag describing the weakest environment
        assumption ``Q`` under which the paper proves progress:
        ``"connected"`` (any connected graph suffices — minimum, hull),
        ``"complete"`` (every pair must meet infinitely often — sum) or
        ``"line"`` (adjacent ranks must meet — sorting).
    enforce:
        When True (default), every group step is validated against ``D``
        and violations raise :class:`ConservationViolation` or
        :class:`ImprovementViolation`.  Benchmarks that intentionally run
        broken algorithms (Figure 1, Figure 2, §4.3's direct formulation)
        switch this off and observe the judgements instead.
    singleton_stutters:
        Opt-in declaration that the step rule, applied to a group of one
        agent, always returns the state unchanged *and* draws no
        randomness.  The incremental simulation engine uses it to skip
        the step-rule call for singleton groups, which dominate sparse
        rounds.  Most of this library's examples declare it (they all
        carry the usual ``if len(states) <= 1: return list(states)``
        guard); block sorting does not, because a lone agent can make
        progress by sorting its own multi-cell block.  The default is
        False so that algorithms defined outside this library are always
        executed faithfully — only declare it when the guard above is the
        first thing your step rule does.
    fast_judge:
        Optional exact shortcut for the relation check on the hot path.
        A callable ``(before, after) -> StepJudgement | None`` receiving
        the group's state lists (``after`` already length-checked and
        element-wise different from ``before``); it must return exactly
        the judgement ``relation.judge(Multiset(before), Multiset(after))``
        would produce — same kind, same ``h`` values bit for bit — or
        None to fall back to the full judge (always safe, and the right
        answer for any case the shortcut cannot price exactly, e.g. a
        conservation violation that the full judge should diagnose).
        Judging draws no randomness, so the shortcut never affects the
        random stream; the engine's full-recompute reference mode ignores
        it entirely, which is how the parity suite pins the equivalence.
    kernel:
        Optional name of the vectorizable kernel this algorithm's step
        rule implements (``"minimum"``, ``"maximum"``, ``"sum"``,
        ``"average"``, ``"kth-smallest"``).  Declaring a kernel is a
        three-part contract the struct-of-arrays engine
        (:class:`repro.simulation.array_engine.ArrayEngine`) relies on:
        the step rule (a) draws no randomness at any group size, (b) is a
        deterministic pure function of the ordered state list, and (c)
        changes at least one element *iff* the step is an improvement
        (so the engine can classify steps without running the relation
        judge).  Leave it None (the default) for step rules that draw
        randomness, depend on instance data beyond the states, or can
        produce non-improving changes — those run on the reference
        engine only.
    """

    name: str
    function: DistributedFunction
    objective: ObjectiveFunction
    group_step: GroupStepRule
    make_initial_state: Callable[[Any], Hashable] = lambda value: value
    read_output: Callable[[Multiset], Any] | None = None
    super_idempotent: bool = True
    environment_requirement: str = "connected"
    enforce: bool = True
    singleton_stutters: bool = False
    fast_judge: Callable[[Sequence[Hashable], Sequence[Hashable]], StepJudgement | None] | None = None
    description: str = ""
    kernel: str | None = None
    relation: OptimizationRelation = field(init=False)

    def __post_init__(self) -> None:
        self.relation = OptimizationRelation(self.function, self.objective)

    # -- setup ----------------------------------------------------------------

    def initial_states(self, values: Sequence[Any]) -> list[Hashable]:
        """Build the initial agent states from a sequence of input values."""
        return [self.make_initial_state(value) for value in values]

    def target(self, initial_states: Sequence[Hashable]) -> Multiset:
        """Return ``S* = f(S(0))`` — the multiset the system must reach and keep."""
        return self.function(Multiset(initial_states))

    # -- execution ------------------------------------------------------------

    def apply_group_step(
        self,
        states: Sequence[Hashable],
        rng: random.Random,
        fast_stutter: bool = True,
    ) -> tuple[list[Hashable], StepJudgement]:
        """Run the step rule on one group and validate the result against ``D``.

        Returns the (possibly unchanged) new states together with the
        :class:`StepJudgement` explaining how the step was classified.

        ``fast_stutter`` short-circuits the common case in which the step
        rule returns the states unchanged: element-wise equality already
        implies multiset equality, i.e. a stutter step, so the multiset
        construction and relation check are skipped.  The same flag gates
        the algorithm's :attr:`fast_judge` shortcut (exact by contract).
        The verdict is identical either way; the flag exists so the
        engine's full-recompute reference mode can reproduce the
        unshortcut execution exactly.

        Raises
        ------
        ConservationViolation
            If enforcement is on and the step changed ``f`` of the group.
        ImprovementViolation
            If enforcement is on and the step changed the state without
            decreasing ``h``.
        SpecificationError
            If the step rule returned a different number of states.
        """
        before = list(states)
        after = self.group_step(before, rng)
        if type(after) is not list:
            after = list(after)
        if len(after) != len(before):
            raise SpecificationError(
                f"group step of {self.name!r} returned {len(after)} states "
                f"for a group of {len(before)} agents"
            )
        if fast_stutter and after == before:
            return after, STUTTER_JUDGEMENT
        judgement = None
        if fast_stutter and self.fast_judge is not None:
            judgement = self.fast_judge(before, after)
        if judgement is None:
            judgement = self.relation.judge(Multiset(before), Multiset(after))
        if self.enforce:
            if judgement.kind is StepKind.BREAKS_CONSERVATION:
                raise ConservationViolation(
                    f"group step of {self.name!r} violated the conservation law",
                    before=before,
                    after=after,
                )
            if judgement.kind is StepKind.NOT_AN_IMPROVEMENT:
                raise ImprovementViolation(
                    f"group step of {self.name!r} changed the state without "
                    f"decreasing the objective "
                    f"({judgement.h_before} -> {judgement.h_after})",
                    before=before,
                    after=after,
                )
        return after, judgement

    # -- incremental objective maintenance ------------------------------------

    def objective_delta(
        self,
        before: float,
        after: Multiset,
        removed: Sequence[Hashable],
        added: Sequence[Hashable],
    ) -> float:
        """Return ``h(after)`` given ``h(before) = before`` and a state delta.

        ``removed``/``added`` are the agent states that left and entered
        the collective bag (aligned with :meth:`repro.agents.group.Group.install`'s
        report).  When the objective supports exact incremental evaluation
        (every decomposable objective in this library: minimum, maximum,
        summation, average, kth-smallest, sorting displacement), the
        result is computed in O(|removed| + |added|) and is bit-identical
        to a full recomputation.  Otherwise — the real-valued hull and
        circle objectives, whose float sums are order-sensitive — it falls
        back to evaluating ``h`` on ``after`` in full.
        """
        if not removed and not added:
            return before
        objective = self.objective
        delta = objective.delta(removed, added)
        if delta is None:
            return objective(after)
        value = before + delta
        if value < objective.lower_bound - 1e-12:
            raise SpecificationError(
                f"objective {objective.name!r} reached {value}, below its "
                f"declared lower bound {objective.lower_bound}"
            )
        return value

    # -- convergence ----------------------------------------------------------

    def is_fixpoint(self, states: Sequence[Hashable] | Multiset) -> bool:
        """Return True when ``S = f(S)`` — no further improvement is possible."""
        return self.function.is_fixpoint(
            states if isinstance(states, Multiset) else Multiset(states)
        )

    def has_converged(
        self,
        states: Sequence[Hashable] | Multiset,
        initial_states: Sequence[Hashable] | Multiset,
    ) -> bool:
        """Return True when the agents have reached ``S* = f(S(0))``."""
        current = states if isinstance(states, Multiset) else Multiset(states)
        initial = (
            initial_states
            if isinstance(initial_states, Multiset)
            else Multiset(initial_states)
        )
        return current == self.function(initial)

    def result(self, states: Sequence[Hashable] | Multiset) -> Any:
        """Extract the problem's answer from a multiset of agent states."""
        bag = states if isinstance(states, Multiset) else Multiset(states)
        if self.read_output is None:
            return bag
        return self.read_output(bag)

    def expected_result(self, values: Sequence[Any]) -> Any:
        """Return the answer the algorithm should produce for ``values``.

        Computed by applying ``f`` to the initial states and reading the
        output from the resulting target multiset, which is exactly what a
        converged run yields.
        """
        initial = Multiset(self.initial_states(values))
        return self.result(self.function(initial))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SelfSimilarAlgorithm({self.name!r})"
