"""Durable file primitives shared by every layer that persists state.

Three operations recur across checkpoints, job records and the result
cache, and they must behave identically everywhere or the recovery story
fragments:

* :func:`atomic_write_text` — the one true atomic write.  ``write_text``
  + ``replace`` alone is atomic against *readers* but not against power
  loss: without an ``fsync`` the rename can land on disk before the data
  blocks do, leaving a correctly-named file full of garbage.  Every
  persisted artifact (run checkpoints, batch results, job records, cache
  entries) goes through this helper — a test pins that.
* :func:`sha256_hex` — the digest used for integrity stamps and content
  addresses, in one place so formats cannot drift.
* :func:`quarantine` — what to do with a file that failed to parse or
  verify: move it aside (``<name>.corrupt``) with a logged reason instead
  of deleting evidence or crashing the reader.  Recovery code treats a
  quarantined artifact as absent and falls back to the next-best source
  (an older checkpoint generation, a cache miss, a fresh run).
"""

from __future__ import annotations

import hashlib
import logging
import os
import pathlib

__all__ = ["atomic_write_text", "sha256_hex", "quarantine", "QUARANTINE_SUFFIX"]

#: Appended to a corrupt file's name when it is moved aside.
QUARANTINE_SUFFIX = ".corrupt"

_LOGGER = logging.getLogger("repro.durable")


def atomic_write_text(path: str | pathlib.Path, text: str) -> pathlib.Path:
    """Write ``text`` to ``path`` atomically *and* durably.

    The data is written to a sibling temporary file, flushed and
    ``fsync``-ed, then ``os.replace``-d over the target: a reader never
    observes a partial file, and a crash (or power loss) immediately
    after the rename cannot leave a correctly-named file whose data
    blocks never reached the disk.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(path.name + ".tmp")
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
    return path


def sha256_hex(data: str | bytes) -> str:
    """Lowercase hex SHA-256 of ``data`` (text is digested as UTF-8)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def quarantine(path: str | pathlib.Path, reason: str) -> pathlib.Path | None:
    """Move a corrupt file aside as ``<name>.corrupt`` and log why.

    Returns the quarantined path, or None when the file vanished first
    (another recovering process may have quarantined it already — both
    outcomes leave the original name free, which is all callers need).
    """
    path = pathlib.Path(path)
    quarantined = path.with_name(path.name + QUARANTINE_SUFFIX)
    try:
        os.replace(path, quarantined)
    except OSError:
        return None
    _LOGGER.warning("quarantined %s: %s", quarantined, reason)
    return quarantined
