"""Deterministic file corruption — the disk-failure half of the harness.

Three damage modes cover the disk failures a recovery path actually
meets: a write cut short (``truncate``), silent media rot (``bitflip``)
and a file created but never filled (``empty``).  Every mode draws from
a caller-provided ``random.Random``, so a fault plan corrupts the exact
same bytes on every replay.
"""

from __future__ import annotations

import pathlib
import random

from ..core.errors import SpecificationError

__all__ = ["CORRUPTION_MODES", "corrupt_file"]

#: The damage modes :func:`corrupt_file` knows, in documentation order.
CORRUPTION_MODES = ("truncate", "bitflip", "empty")


def corrupt_file(
    path: str | pathlib.Path, mode: str, rng: random.Random
) -> str:
    """Damage ``path`` in place; returns a human-readable description.

    ``truncate`` keeps a seeded prefix of under half the file (possibly
    zero bytes), ``bitflip`` flips one seeded bit, ``empty`` leaves a
    zero-byte file.  The file must exist — corrupting nothing would make
    a fault plan silently weaker than declared.
    """
    path = pathlib.Path(path)
    data = path.read_bytes()
    if mode == "empty":
        path.write_bytes(b"")
        return f"emptied {path.name} ({len(data)} bytes dropped)"
    if mode == "truncate":
        keep = rng.randrange(0, max(1, len(data) // 2))
        path.write_bytes(data[:keep])
        return f"truncated {path.name} from {len(data)} to {keep} bytes"
    if mode == "bitflip":
        if not data:
            path.write_bytes(b"\x01")
            return f"wrote a stray byte into empty {path.name}"
        index = rng.randrange(len(data))
        flipped = data[index] ^ (1 << rng.randrange(8))
        path.write_bytes(data[:index] + bytes([flipped]) + data[index + 1 :])
        return f"flipped one bit at byte {index} of {path.name}"
    raise SpecificationError(
        f"unknown corruption mode {mode!r}; known: {CORRUPTION_MODES}"
    )
