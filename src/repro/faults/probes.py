"""Crash injection as a registered probe: ``fault-crash``.

This generalizes the armed test-only probe from ``tests/test_batch.py``
into a spec-addressable building block: any experiment can declare

.. code-block:: json

    {"probe": "fault-crash", "at_round": 8, "times": 1, "token": "demo"}

and its worker will die with :class:`InjectedFault` at round 8 — once.
A run that ends before the scheduled round crashes at the finish line
instead (after its last round, before the result is persisted), so an
armed probe always spends its budget.
The ``times`` budget is tracked per process and per ``token`` (an
arming key), which is exactly how real crashes behave under retry: the
unit that died restores from its latest checkpoint, re-executes, and
this time survives.  The probe publishes **no payload** (``on_finish``
returns None), so a run that completes under injected crashes is
byte-identical to a run of the same spec without the probe — the
harness's headline guarantee.
"""

from __future__ import annotations

from ..registry import register_probe
from ..simulation.protocol import Probe

__all__ = ["InjectedFault", "FaultCrashProbe", "reset_crash_counters"]


class InjectedFault(RuntimeError):
    """A failure raised on purpose by the fault-injection harness."""


#: Crashes already fired in this process, by arming token.  Module-level
#: on purpose: a retried unit runs in the same worker process, and the
#: budget must survive the probe being rebuilt from its spec entry.
_FIRED: dict[str, int] = {}


def reset_crash_counters(token: str | None = None) -> None:
    """Re-arm crash budgets (all tokens, or one) — chaos runs call this
    so a plan replays identically within one long-lived process."""
    if token is None:
        _FIRED.clear()
    else:
        _FIRED.pop(token, None)


@register_probe("fault-crash")
class FaultCrashProbe(Probe):
    """Kill the run at round ``at_round``, at most ``times`` times per
    process per ``token``."""

    name = "fault-crash"

    def __init__(self, at_round: int = 5, times: int = 1, token: str = "fault"):
        if int(at_round) < 1:
            raise ValueError(f"fault-crash needs at_round >= 1, got {at_round!r}")
        if int(times) < 0:
            raise ValueError(f"fault-crash needs times >= 0, got {times!r}")
        self.at_round = int(at_round)
        self.times = int(times)
        self.token = str(token)
        self._seen = 0

    def on_start(self, engine) -> None:
        self._seen = 0

    def _fire(self, where: str) -> None:
        _FIRED[self.token] = _FIRED.get(self.token, 0) + 1
        raise InjectedFault(
            f"injected crash {where} "
            f"(token {self.token!r}, "
            f"{_FIRED[self.token]}/{self.times} fired)"
        )

    def on_round(self, record) -> None:
        self._seen += 1
        if self._seen >= self.at_round and _FIRED.get(self.token, 0) < self.times:
            self._fire(f"at round {self._seen}")

    def state_dict(self) -> dict:
        return {"seen": self._seen}

    def load_state(self, state: dict) -> None:
        self._seen = state["seen"]

    def on_finish(self) -> None:
        # A run that converges before ``at_round`` still crashes — at the
        # finish line, after the last round but before its result lands —
        # so an armed probe *always* spends its budget: the crash a plan
        # schedules is a guarantee, not a lottery ticket on convergence
        # speed.  Recovery re-executes from the newest checkpoint (or
        # from scratch) and, with the budget spent, completes.
        if _FIRED.get(self.token, 0) < self.times:
            self._fire(f"at finish (after round {self._seen})")
        # No payload: a recovered run must stay byte-identical to the
        # same spec run without fault injection.
        return None
