"""Seeded fault plans: declarative, replayable chaos.

A :class:`FaultPlan` is the unit of chaos: a JSON-round-trippable list
of fault entries, every random choice in it drawn from
``random.Random(f"fault-plan:{seed}")`` — so ``repro chaos <spec>
--fault-seed S`` injects the *exact same* faults on every machine and
every rerun.  The plan covers every seam the infrastructure recovers
through:

``crash``
    a worker dies at round *k* (the :mod:`repro.faults.probes`
    ``fault-crash`` probe, attached to the run's spec);
``checkpoint-corrupt``
    rolling checkpoint files are damaged on disk
    (:func:`~repro.faults.corrupt.corrupt_file`) before resume;
``cache-corrupt``
    a result-cache entry is damaged between submissions (modes that
    guarantee unparseable JSON — silent valid-JSON damage is a stamp
    problem, not a cache-read problem);
``http-flaky``
    the service answers with 503s, resets the connection, or delays
    responses (served through :class:`HTTPFaultHook`, the injection
    seam of :class:`~repro.service.server.ExperimentService`);
``sse-disconnect``
    the event stream is cut after N events mid-stream; the client
    reconnects with ``Last-Event-ID``.

Plans are *finite*: each entry carries an explicit budget, so a chaos
run always drains its faults and completes.
"""

from __future__ import annotations

import json
import pathlib
import random
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Mapping
from urllib.error import URLError

from ..core.errors import SpecificationError
from .corrupt import CORRUPTION_MODES

__all__ = ["FAULT_KINDS", "PLAN_FORMAT", "FaultPlan", "HTTPFaultHook", "ClientFaultHook"]

#: Every fault kind a plan may declare, in injection-seam order.
FAULT_KINDS = (
    "crash",
    "checkpoint-corrupt",
    "cache-corrupt",
    "http-flaky",
    "sse-disconnect",
)

#: ``format`` key identifying a fault-plan file.
PLAN_FORMAT = "repro-fault-plan"

#: HTTP flakiness modes ``http-flaky`` entries draw from.
_HTTP_MODES = ("status", "reset", "delay")


@dataclass(frozen=True)
class FaultPlan:
    """One seeded, declarative set of faults to inject into a run."""

    seed: int
    entries: tuple[dict, ...]

    @classmethod
    def generate(
        cls, seed: int, kinds: Iterable[str] = FAULT_KINDS
    ) -> "FaultPlan":
        """Draw one concrete fault entry per requested kind, seeded."""
        rng = random.Random(f"fault-plan:{seed}")
        entries: list[dict] = []
        for kind in kinds:
            if kind == "crash":
                entries.append(
                    {"kind": "crash", "at_round": rng.randrange(3, 13), "times": 1}
                )
            elif kind == "checkpoint-corrupt":
                entries.append(
                    {
                        "kind": "checkpoint-corrupt",
                        "mode": rng.choice(CORRUPTION_MODES),
                        # also damage the newest round-NNN generation, so
                        # recovery must reach back a full generation
                        "stale_fallback": rng.random() < 0.5,
                    }
                )
            elif kind == "cache-corrupt":
                entries.append(
                    {"kind": "cache-corrupt", "mode": rng.choice(("truncate", "empty"))}
                )
            elif kind == "http-flaky":
                entries.append(
                    {
                        "kind": "http-flaky",
                        "modes": [
                            rng.choice(_HTTP_MODES)
                            for _ in range(rng.randrange(1, 4))
                        ],
                        "delay_seconds": round(0.02 + 0.08 * rng.random(), 3),
                    }
                )
            elif kind == "sse-disconnect":
                entries.append(
                    {
                        "kind": "sse-disconnect",
                        "after_events": rng.randrange(1, 4),
                        "times": rng.randrange(1, 3),
                    }
                )
            else:
                raise SpecificationError(
                    f"unknown fault kind {kind!r}; known: {FAULT_KINDS}"
                )
        return cls(seed=int(seed), entries=tuple(entries))

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": PLAN_FORMAT,
            "seed": self.seed,
            "entries": [dict(entry) for entry in self.entries],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping) or data.get("format") != PLAN_FORMAT:
            raise SpecificationError(
                f"not a fault plan (format {data.get('format') if isinstance(data, Mapping) else data!r}, "
                f"expected {PLAN_FORMAT!r})"
            )
        entries = data.get("entries")
        if not isinstance(entries, list):
            raise SpecificationError("a fault plan needs an 'entries' list")
        for entry in entries:
            if not isinstance(entry, Mapping) or entry.get("kind") not in FAULT_KINDS:
                raise SpecificationError(
                    f"bad fault entry {entry!r}; each entry needs a 'kind' "
                    f"from {FAULT_KINDS}"
                )
        return cls(
            seed=int(data.get("seed", 0)),
            entries=tuple(dict(entry) for entry in entries),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as error:
            raise SpecificationError(f"invalid fault plan JSON: {error}") from error

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "FaultPlan":
        return cls.from_json(pathlib.Path(path).read_text())

    # -- derived injectors -------------------------------------------------------

    def entries_of(self, kind: str) -> list[dict]:
        return [dict(entry) for entry in self.entries if entry["kind"] == kind]

    @property
    def token(self) -> str:
        """The crash-arming token every probe entry of this plan uses."""
        return f"fault-plan:{self.seed}"

    def crash_probe_entries(self) -> list[dict]:
        """The plan's crashes as declarative ``fault-crash`` probe entries."""
        return [
            {
                "probe": "fault-crash",
                "at_round": entry["at_round"],
                "times": entry.get("times", 1),
                "token": self.token,
            }
            for entry in self.entries_of("crash")
        ]

    def crash_budget(self) -> int:
        """Total crashes the plan may fire (bounds the retries needed)."""
        return sum(entry.get("times", 1) for entry in self.entries_of("crash"))

    def corruption_rng(self, label: str) -> random.Random:
        """A per-target RNG so corruption bytes replay exactly, whatever
        order the targets are visited in."""
        return random.Random(f"fault-plan:{self.seed}:{label}")

    def server_hook(self) -> "HTTPFaultHook | None":
        """The service-side injection hook, or None when the plan carries
        no HTTP/SSE faults."""
        if not self.entries_of("http-flaky") and not self.entries_of("sse-disconnect"):
            return None
        return HTTPFaultHook(self)


class HTTPFaultHook:
    """The server-side fault schedule, consumed request by request.

    :class:`~repro.service.server.ExperimentService` calls the hook as
    ``hook(method, path)`` before routing each request; a non-None
    return is a fault action dictionary:

    * ``{"action": "status", "status": 503}`` — answer with that status;
    * ``{"action": "reset"}`` — close the connection without a response;
    * ``{"action": "delay", "seconds": s}`` — stall, then serve normally;
    * ``{"action": "close-after", "events": n}`` — (SSE only) cut the
      event stream after ``n`` events, without the terminal ``end``.

    Budgets are finite and consumed under a lock, so a chaos run always
    drains its faults; health checks (``/healthz``) are never faulted —
    they are how orchestration tells "down" from "unlucky".
    """

    def __init__(self, plan: FaultPlan):
        self._lock = threading.Lock()
        self._http: list[dict] = []
        for entry in plan.entries_of("http-flaky"):
            for mode in entry.get("modes", ()):
                if mode == "status":
                    self._http.append({"action": "status", "status": 503})
                elif mode == "reset":
                    self._http.append({"action": "reset"})
                elif mode == "delay":
                    self._http.append(
                        {
                            "action": "delay",
                            "seconds": float(entry.get("delay_seconds", 0.05)),
                        }
                    )
                else:
                    raise SpecificationError(
                        f"unknown http-flaky mode {mode!r}; known: {_HTTP_MODES}"
                    )
        self._sse: list[int] = []
        for entry in plan.entries_of("sse-disconnect"):
            self._sse.extend(
                [int(entry.get("after_events", 1))] * int(entry.get("times", 1))
            )

    def __call__(self, method: str, path: str) -> dict | None:
        with self._lock:
            if path.endswith("/events"):
                if self._sse:
                    return {"action": "close-after", "events": self._sse.pop(0)}
                return None
            if path == "/healthz":
                return None
            if self._http:
                return self._http.pop(0)
            return None

    def exhausted(self) -> bool:
        """True once every scheduled HTTP/SSE fault has fired."""
        with self._lock:
            return not self._http and not self._sse


class ClientFaultHook:
    """Client-side transport faults: the first ``failures`` matching
    requests raise :class:`urllib.error.URLError` before any bytes move.

    The test seam of :class:`~repro.service.client.ServiceClient` — it
    proves the retry policy without a misbehaving server.
    """

    def __init__(self, failures: int = 1, methods: tuple[str, ...] | None = None):
        self.remaining = int(failures)
        self.methods = methods
        self.fired = 0

    def __call__(self, method: str, path: str) -> None:
        if self.methods is not None and method not in self.methods:
            return
        if self.remaining > 0:
            self.remaining -= 1
            self.fired += 1
            raise URLError("injected connection failure")
