"""Deterministic fault injection and the self-healing it proves out.

The subsystem has two halves that meet in the middle:

* **injection** — a seeded, JSON-declarable :class:`FaultPlan` whose
  entries target every seam of the infrastructure: worker crashes at a
  chosen round (:class:`FaultCrashProbe`), checkpoint/cache file
  corruption (:func:`corrupt_file`), flaky HTTP service behaviour and
  mid-stream SSE disconnects (:class:`HTTPFaultHook`,
  :class:`ClientFaultHook`);
* **healing** — the uniform :class:`RetryPolicy` (exponential backoff,
  deterministic jitter) used by the service client and the batch layer,
  stamped checkpoints with verified fallback
  (:func:`~repro.simulation.checkpoint.load_newest_verified`), and
  quarantine-instead-of-crash reads everywhere persisted state is
  loaded.

:func:`run_chaos` (the ``repro chaos`` command) drives a plan end to
end and checks the headline guarantee: a run that completes under an
injected fault plan is **byte-identical** to the unfaulted run, and the
same ``--fault-seed`` replays the same faults everywhere.
"""

from .corrupt import CORRUPTION_MODES, corrupt_file
from .plan import FAULT_KINDS, ClientFaultHook, FaultPlan, HTTPFaultHook
from .probes import FaultCrashProbe, InjectedFault, reset_crash_counters
from .retry import RetryPolicy
from .chaos import CHAOS_MODES, run_chaos

__all__ = [
    "CHAOS_MODES",
    "CORRUPTION_MODES",
    "ClientFaultHook",
    "FAULT_KINDS",
    "FaultCrashProbe",
    "FaultPlan",
    "HTTPFaultHook",
    "InjectedFault",
    "RetryPolicy",
    "corrupt_file",
    "reset_crash_counters",
    "run_chaos",
]
