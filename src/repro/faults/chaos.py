"""Chaos orchestration: drive a fault plan end to end, prove recovery.

``repro chaos <spec> --fault-seed S`` runs here.  For each requested
mode the orchestrator produces an *unfaulted reference*, executes the
same spec under the plan's injected faults, lets the self-healing
machinery recover, and then compares — the headline guarantee is that
the recovered results are **byte-identical** to the reference:

``batch``
    a durable :class:`~repro.simulation.batch.BatchRunner` sweep: the
    plan's crash probe kills a unit mid-run (graceful degradation keeps
    every other unit's result), its checkpoint files are corrupted on
    disk, and ``resume`` with retries + backoff must still reproduce
    the reference bytes — falling back to the newest checkpoint that
    verifies and quarantining what does not;
``service``
    a live :class:`~repro.service.server.ExperimentService` with the
    plan's HTTP fault hook installed: submission and polling ride out
    injected 503s/resets/delays through client retries, the SSE stream
    survives mid-stream disconnects via ``Last-Event-ID`` reconnection,
    a corrupted result-cache entry downgrades to a re-execution, and
    every answer matches the offline ``spec.run(seed)`` bytes.

Because every injected fault and every jittered delay is derived from
the plan's seed, a failing chaos run is *replayable*: the same spec and
``--fault-seed`` reproduce the same faults, in the same order, on any
machine.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from ..core.errors import SpecificationError
from ..experiment import ExperimentSpec
from ..simulation.batch import BatchResult, BatchRunner
from .corrupt import corrupt_file
from .plan import FaultPlan
from .probes import FaultCrashProbe, reset_crash_counters

__all__ = ["CHAOS_MODES", "run_chaos", "split_crash_probes"]

#: Chaos execution modes ``repro chaos --mode`` accepts.
CHAOS_MODES = ("batch", "service", "all")


def _stripped_result(result: dict) -> dict:
    """A run result minus the checkpoint probe's payload (its directory
    strings necessarily differ between batch directories)."""
    data = dict(result)
    probes = dict(data.get("probes") or {})
    probes.pop("checkpoint", None)
    if probes:
        data["probes"] = probes
    else:
        data.pop("probes", None)
    return data


def comparable_items(batch: BatchResult) -> list[tuple]:
    """What byte-identity means for a durable batch: every completed
    unit's (label, seed, result), checkpoint bookkeeping stripped."""
    return [
        (item.label, item.seed, _stripped_result(item.result))
        for item in batch
        if item.result is not None
    ]


def _is_crash_entry(entry: Any) -> bool:
    if entry == FaultCrashProbe.name:
        return True
    return isinstance(entry, dict) and entry.get("probe") == FaultCrashProbe.name


def split_crash_probes(
    spec: ExperimentSpec,
) -> tuple[ExperimentSpec, list[dict]]:
    """Separate a spec from any ``fault-crash`` probes it embeds.

    A spec may arm its own crashes (``examples/specs/minimum_chaos.json``
    does); the *reference* run must execute without them, while the
    faulted run keeps them alongside the plan's own crash entries.
    """
    embedded = [
        dict(entry) if isinstance(entry, dict) else {"probe": FaultCrashProbe.name}
        for entry in spec.probes
        if _is_crash_entry(entry)
    ]
    if not embedded:
        return spec, []
    clean = [entry for entry in spec.probes if not _is_crash_entry(entry)]
    return spec.with_updates({"probes": clean}), embedded


def _faulted(
    clean: ExperimentSpec, embedded: list[dict], plan: FaultPlan
) -> ExperimentSpec:
    """The spec with every crash probe attached — the spec's own plus the
    plan's (injection rides the declarative probe pipeline; recovery
    must strip every trace)."""
    entries = embedded + plan.crash_probe_entries()
    if not entries:
        return clean
    return clean.with_updates({"probes": list(clean.probes) + entries})


def _rearm(embedded: list[dict], plan: FaultPlan) -> int:
    """Reset every crash budget the run will draw on; returns the total
    number of crashes that may fire (bounds the retries needed)."""
    reset_crash_counters(plan.token)
    budget = plan.crash_budget()
    for entry in embedded:
        reset_crash_counters(str(entry.get("token", "fault")))
        budget += int(entry.get("times", 1))
    return budget


def _corrupt_checkpoints(
    chaos_dir: pathlib.Path, plan: FaultPlan
) -> list[dict]:
    """Damage on-disk checkpoints per the plan; returns what was done.

    Every unit's newest checkpoint (``latest.json``) is corrupted; with
    ``stale_fallback`` the newest rolling generation is damaged too, so
    recovery must reach back a full generation.  Corruption bytes come
    from a per-file seeded RNG — identical on every replay.
    """
    corruptions: list[dict] = []
    for entry in plan.entries_of("checkpoint-corrupt"):
        targets = sorted(chaos_dir.glob("unit-*/engine/*/latest.json"))
        if entry.get("stale_fallback"):
            for engine_dir in sorted(chaos_dir.glob("unit-*/engine/*")):
                rounds = sorted(engine_dir.glob("round-*.json"))
                if rounds:
                    targets.append(rounds[-1])
        for path in targets:
            label = str(path.relative_to(chaos_dir))
            detail = corrupt_file(path, entry["mode"], plan.corruption_rng(label))
            corruptions.append({"path": label, "detail": detail})
    return corruptions


def _quarantined(directory: pathlib.Path) -> list[str]:
    return sorted(
        str(path.relative_to(directory)) for path in directory.rglob("*.corrupt")
    )


def _chaos_batch(
    spec: ExperimentSpec,
    plan: FaultPlan,
    directory: pathlib.Path,
    checkpoint_every: int,
) -> dict:
    """Crash + checkpoint corruption against a durable batch sweep."""
    clean, embedded = split_crash_probes(spec)
    reference = BatchRunner(backend="serial").run(
        clean, checkpoint_dir=directory / "reference", checkpoint_every=checkpoint_every
    )
    if reference.failures():
        raise SpecificationError(
            "the unfaulted reference batch failed; fix the spec before "
            f"injecting faults:\n{reference.failures()[0].error}"
        )

    crash_budget = _rearm(embedded, plan)
    chaos_dir = directory / "faulted"
    first = BatchRunner(backend="serial").run(
        _faulted(clean, embedded, plan),
        checkpoint_dir=chaos_dir,
        checkpoint_every=checkpoint_every,
    )
    corruptions = _corrupt_checkpoints(chaos_dir, plan)
    recovered = BatchRunner(
        backend="serial",
        retries=max(1, crash_budget),
        retry_backoff=0.01,
    ).resume(chaos_dir)

    match = comparable_items(recovered) == comparable_items(reference)
    return {
        "mode": "batch",
        "match": match,
        "units": len(reference),
        "first_attempt_failures": first.failure_records(),
        "first_attempt_completed": len(first.completed()),
        "corrupted": corruptions,
        "recovered_failures": recovered.failure_records(),
        "quarantined": _quarantined(directory),
    }


def _chaos_service(
    spec: ExperimentSpec,
    plan: FaultPlan,
    directory: pathlib.Path,
    checkpoint_every: int,
) -> dict:
    """Crash + HTTP flakiness + SSE disconnects + cache corruption
    against a live service, compared to offline runs."""
    from ..service import ExperimentService, ServiceClient, ServiceError
    from .retry import RetryPolicy

    clean, embedded = split_crash_probes(spec)
    offline = [clean.run(seed).to_dict() for seed in clean.seeds]
    target = _faulted(clean, embedded, plan)
    crash_budget = _rearm(embedded, plan)
    hook = plan.server_hook()
    service = ExperimentService(
        directory / "service",
        checkpoint_every=checkpoint_every,
        retries=max(1, crash_budget),
        retry_backoff=0.01,
        fault_hook=hook,
    ).start()
    try:
        client = ServiceClient(
            service.url,
            retry=RetryPolicy(
                retries=4,
                base_delay=0.05,
                max_delay=0.5,
                namespace=f"repro-chaos:{plan.seed}",
            ),
        )
        job = client.submit(target)
        # Follow the stream live: injected disconnects force the client
        # through its Last-Event-ID reconnection path.
        events = list(client.events(job["id"]))
        record = client.wait(job["id"], timeout=600)
        if record["status"] != "done":
            raise SpecificationError(
                f"chaos service run failed:\n{record.get('error')}"
            )
        results = record["results"]
        results_match = [unit["result"] for unit in results] == offline
        # A clean end-to-end replay of the (now drained) stream must
        # equal what the interrupted live collection stitched together.
        stream_match = list(client.events(job["id"])) == events

        corruptions: list[dict] = []
        resubmit_matches: list[bool] = []
        for entry in plan.entries_of("cache-corrupt"):
            fingerprint = target.fingerprint()
            path = service.cache._path(fingerprint)
            if not path.exists():
                continue
            label = f"cache:{fingerprint}"
            detail = corrupt_file(path, entry["mode"], plan.corruption_rng(label))
            corruptions.append({"path": label, "detail": detail})
            second = client.wait(client.submit(target)["id"], timeout=600)
            # Unit records embed job-private plumbing (durable probe
            # directories, broker channels), so byte-identity is judged
            # on the run results themselves.
            resubmit_matches.append(
                second["status"] == "done"
                and json.dumps(
                    [unit["result"] for unit in second["results"]], sort_keys=True
                )
                == json.dumps([unit["result"] for unit in results], sort_keys=True)
            )

        # Drain any scheduled HTTP faults that outlived the run, so the
        # report can assert the whole plan actually fired.
        for _ in range(10):
            if hook is None or hook.exhausted():
                break
            try:
                client.runs()
            except ServiceError:  # pragma: no cover - budget > retries
                pass

        match = results_match and stream_match and all(resubmit_matches)
        return {
            "mode": "service",
            "match": match,
            "units": len(results),
            "results_match_offline": results_match,
            "events_streamed": len(events),
            "stream_match": stream_match,
            "corrupted": corruptions,
            "resubmit_matches": resubmit_matches,
            "cache_stats": service.cache.stats(),
            "http_faults_drained": hook.exhausted() if hook is not None else True,
            "quarantined": _quarantined(directory),
        }
    finally:
        service.stop(drain=False, timeout=10.0)


def run_chaos(
    spec: ExperimentSpec,
    plan: FaultPlan,
    directory: str | pathlib.Path,
    mode: str = "all",
    checkpoint_every: int = 5,
) -> dict[str, Any]:
    """Execute ``plan`` against ``spec`` in ``mode``; returns the report.

    The report's top-level ``match`` is the headline guarantee: True iff
    every mode's recovered results were byte-identical to its unfaulted
    reference.  Everything in the report is a deterministic function of
    (spec, plan), so two runs with the same ``--fault-seed`` produce the
    same report — that is what makes a chaos failure debuggable.
    """
    if mode not in CHAOS_MODES:
        raise SpecificationError(
            f"unknown chaos mode {mode!r}; known: {CHAOS_MODES}"
        )
    spec.validate()
    base = pathlib.Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    modes: dict[str, dict] = {}
    if mode in ("batch", "all"):
        modes["batch"] = _chaos_batch(spec, plan, base / "batch", checkpoint_every)
    if mode in ("service", "all"):
        modes["service"] = _chaos_service(
            spec, plan, base / "service", checkpoint_every
        )
    return {
        "plan": plan.to_dict(),
        "spec": spec.label,
        "modes": modes,
        "match": all(report["match"] for report in modes.values()),
    }
