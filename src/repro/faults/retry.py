"""Deterministic retry with exponential backoff + seeded jitter.

One :class:`RetryPolicy` serves every self-healing seam — the service
client's transport retries, its status-poll backoff, and the batch
layer's between-attempt delays — so the *shape* of recovery is uniform
and, crucially, **deterministic**: the jitter for attempt ``k`` of
operation ``key`` is drawn from ``random.Random(f"{namespace}:{key}:{k}")``,
never from the global RNG or the clock, so a replayed fault plan sees
the exact same delays (and the determinism linter sees no global draw).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    ``delay(attempt, key)`` for attempt ``1..retries`` is
    ``min(max_delay, base_delay * 2**(attempt-1))`` scaled by a
    deterministic jitter factor in ``[0.5, 1.0]`` — full exponential
    growth, capped, never synchronized across concurrent retriers with
    different keys.
    """

    retries: int = 3
    base_delay: float = 0.1
    max_delay: float = 2.0
    namespace: str = "repro-retry"

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError(
                f"delays must be >= 0, got base_delay={self.base_delay}, "
                f"max_delay={self.max_delay}"
            )

    def delay(self, attempt: int, key: str = "") -> float:
        """The backoff before retry ``attempt`` (1-based) of operation ``key``."""
        if attempt < 1:
            return 0.0
        base = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        jitter = random.Random(f"{self.namespace}:{key}:{attempt}")
        return base * (0.5 + 0.5 * jitter.random())

    def sleep_before(
        self,
        attempt: int,
        key: str = "",
        deadline: float | None = None,
        sleep=time.sleep,
    ) -> float:
        """Sleep the attempt's backoff (clipped to ``deadline``, a
        ``time.monotonic`` instant); returns the seconds actually slept."""
        pause = self.delay(attempt, key)
        if deadline is not None:
            pause = min(pause, max(0.0, deadline - time.monotonic()))
        if pause > 0:
            sleep(pause)
        return pause
