"""Agents, groups and the schedulers that decide which groups act."""

from .agent import Agent
from .group import Group
from .scheduler import (
    MaximalGroupsScheduler,
    RandomPairScheduler,
    RandomSubgroupScheduler,
    Scheduler,
    SingleGroupScheduler,
)

__all__ = [
    "Agent",
    "Group",
    "MaximalGroupsScheduler",
    "RandomPairScheduler",
    "RandomSubgroupScheduler",
    "Scheduler",
    "SingleGroupScheduler",
]
