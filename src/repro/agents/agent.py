"""Agents.

An agent in the paper is nothing more than an identifier with a state drawn
from the algorithm's state space; the environment decides when it may act.
:class:`Agent` therefore stays deliberately small: it carries an id, the
current state, and bookkeeping counters that the simulator and the metrics
layer use (how many group steps the agent participated in, how many of
those actually changed its state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["Agent"]


@dataclass
class Agent:
    """One agent of a dynamic distributed system.

    Attributes
    ----------
    agent_id:
        The agent's identifier, ``0 .. num_agents - 1``.
    state:
        The agent's current state (hashable — it is stored in multisets).
    initial_state:
        The state the agent started the computation with; kept so that the
        conservation-law invariant ``f(S) = f(S(0))`` can be checked at any
        time without replaying the trace.
    steps_participated:
        Number of group steps in which this agent was a member of the
        acting group.
    steps_changed:
        Number of those steps that actually changed this agent's state.
    """

    agent_id: int
    state: Hashable
    initial_state: Hashable = None
    steps_participated: int = 0
    steps_changed: int = 0

    def __post_init__(self) -> None:
        if self.initial_state is None:
            self.initial_state = self.state

    def update(self, new_state: Hashable) -> bool:
        """Install a new state; return True when the state actually changed."""
        self.steps_participated += 1
        if new_state != self.state:
            self.state = new_state
            self.steps_changed += 1
            return True
        return False

    def reset(self) -> None:
        """Restore the initial state and clear the counters."""
        self.state = self.initial_state
        self.steps_participated = 0
        self.steps_changed = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Agent(id={self.agent_id}, state={self.state!r})"
