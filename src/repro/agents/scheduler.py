"""Group schedulers.

The paper's transition relation allows *any* partition of the agents into
groups to take concurrent steps, as long as each group is a set of agents
the environment currently lets collaborate.  A scheduler chooses, for each
round, which partition actually acts.  Different schedulers model
different execution styles:

* :class:`MaximalGroupsScheduler` — every connected component acts as one
  group; the fastest, most synchronous execution.
* :class:`RandomPairScheduler` — a random matching of currently connected
  pairs acts; models asynchronous pairwise gossip, the weakest realistic
  interaction pattern.
* :class:`SingleGroupScheduler` — only one component acts per round;
  models a system so resource-starved that collaboration happens one
  group at a time.
* :class:`RandomSubgroupScheduler` — each component acts, but split into
  random subgroups; exercises self-similarity across group sizes.

Schedulers never merge agents that the environment keeps apart: every
scheduled group is a subset of one communication group of the current
environment state, so scheduled steps are steps the paper's model allows.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from ..environment.base import EnvironmentState
from ..registry import register_scheduler
from .group import Group

__all__ = [
    "Scheduler",
    "MaximalGroupsScheduler",
    "RandomPairScheduler",
    "SingleGroupScheduler",
    "RandomSubgroupScheduler",
]


class Scheduler(ABC):
    """Chooses which groups act in a round, given the environment state."""

    #: True for schedulers whose round is built from the environment's
    #: communication groups.  The simulation engine only maintains
    #: incremental connectivity (a per-round cost of its own) when the
    #: active scheduler declares it will consume the components; the
    #: default is False so unknown schedulers never pay for maintenance
    #: they do not use — their component queries still work, served by the
    #: state's memoized from-scratch computation.
    uses_communication_groups: bool = False

    @abstractmethod
    def schedule(
        self, environment_state: EnvironmentState, rng: random.Random
    ) -> list[Group]:
        """Return the groups that act this round.

        The groups must be pairwise disjoint and each must be a subset of
        one communication group of ``environment_state``.  Agents that are
        not scheduled simply stutter.
        """

    def describe(self) -> str:
        """One-line description for benchmark reports."""
        return type(self).__name__


@register_scheduler("maximal")
class MaximalGroupsScheduler(Scheduler):
    """Every communication group of the environment acts, whole.

    When the engine maintains connectivity incrementally, the environment
    state carries one interned :class:`Group` per maintained component;
    scheduling is then just handing back that shared list — components
    unchanged since the previous round reuse their group object, so a
    quiet round allocates O(|delta|) groups instead of O(n).  The list is
    owned by the connectivity tracker and must be treated as read-only,
    which the engine's consumption (iteration only) respects.
    """

    uses_communication_groups = True

    def schedule(
        self, environment_state: EnvironmentState, rng: random.Random
    ) -> list[Group]:
        maintained = environment_state.maintained_scheduler_groups()
        if maintained is not None:
            return maintained
        # The tuples arrive sorted exactly as Group stores its members, so
        # the groups are built without re-sorting each component.
        return [
            Group(members)
            for members in environment_state.communication_group_tuples()
        ]

    def describe(self) -> str:
        return "maximal groups (every connected component acts)"


@register_scheduler("random-pair")
class RandomPairScheduler(Scheduler):
    """A random matching of connected, enabled pairs acts each round.

    Models pairwise gossip: each agent talks to at most one neighbour per
    round.  The matching is built greedily from a random shuffle of the
    currently available edges.
    """

    def schedule(
        self, environment_state: EnvironmentState, rng: random.Random
    ) -> list[Group]:
        edges = list(environment_state.effective_edges())
        rng.shuffle(edges)
        matched: set[int] = set()
        groups: list[Group] = []
        for a, b in edges:
            if a in matched or b in matched:
                continue
            matched.add(a)
            matched.add(b)
            groups.append(Group.of((a, b)))
        return groups

    def describe(self) -> str:
        return "random pairwise gossip (random matching of available edges)"


@register_scheduler("single-group")
class SingleGroupScheduler(Scheduler):
    """Exactly one communication group acts per round (chosen at random)."""

    uses_communication_groups = True

    def schedule(
        self, environment_state: EnvironmentState, rng: random.Random
    ) -> list[Group]:
        components = [
            component
            for component in environment_state.communication_groups()
            if len(component) >= 2
        ]
        if not components:
            return []
        return [Group.of(rng.choice(components))]

    def describe(self) -> str:
        return "single group per round"


@register_scheduler("random-subgroup")
class RandomSubgroupScheduler(Scheduler):
    """Each communication group is split into random connected-agnostic chunks.

    The paper's partition ``π`` may split a communicating set into smaller
    groups; this scheduler exercises that freedom by cutting every
    component into chunks of random size between ``min_size`` and
    ``max_size``.  (Chunk members are drawn from the same component, so
    they can in fact communicate.)
    """

    uses_communication_groups = True

    def __init__(self, min_size: int = 2, max_size: int = 4):
        if min_size < 1 or max_size < min_size:
            raise ValueError("need 1 <= min_size <= max_size")
        self.min_size = min_size
        self.max_size = max_size

    def schedule(
        self, environment_state: EnvironmentState, rng: random.Random
    ) -> list[Group]:
        groups: list[Group] = []
        for component in environment_state.communication_groups():
            members = list(component)
            rng.shuffle(members)
            index = 0
            while index < len(members):
                size = rng.randint(self.min_size, self.max_size)
                chunk = members[index : index + size]
                index += size
                if chunk:
                    groups.append(Group.of(chunk))
        return groups

    def describe(self) -> str:
        return f"random subgroups (size {self.min_size}..{self.max_size})"
