"""Groups of communicating agents.

In each environment state the enabled agents split into *groups* — the
connected components of the available communication graph.  A group is the
unit of computation: the paper's transition relation lets every group of a
partition take one collaborative step, and self-similarity means the same
step rule serves groups of every size (including singletons, whose only
``f``-conserving, ``h``-decreasing option is usually to stutter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..core.multiset import Multiset
from .agent import Agent

__all__ = ["Group"]


@dataclass(frozen=True)
class Group:
    """An ordered group of agent ids (order fixes how step rules see states)."""

    members: tuple[int, ...]

    @classmethod
    def of(cls, members: Iterable[int]) -> "Group":
        """Build a group from any iterable of agent ids (sorted for determinism)."""
        return cls(tuple(sorted(members)))

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __contains__(self, agent_id: int) -> bool:
        return agent_id in self.members

    @property
    def is_singleton(self) -> bool:
        """True when the group contains exactly one agent."""
        return len(self.members) == 1

    def states_of(self, agents: Sequence[Agent]) -> list[Hashable]:
        """Return the member agents' states, in member order."""
        return [agents[agent_id].state for agent_id in self.members]

    def state_multiset(self, agents: Sequence[Agent]) -> Multiset:
        """Return the group state ``S_B`` as a multiset."""
        return Multiset(self.states_of(agents))

    def install(self, agents: Sequence[Agent], new_states: Sequence[Hashable]) -> int:
        """Write new states back to the member agents.

        Returns the number of agents whose state actually changed.
        """
        changed = 0
        for agent_id, new_state in zip(self.members, new_states):
            if agents[agent_id].update(new_state):
                changed += 1
        return changed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Group({list(self.members)})"
