"""Groups of communicating agents.

In each environment state the enabled agents split into *groups* — the
connected components of the available communication graph.  A group is the
unit of computation: the paper's transition relation lets every group of a
partition take one collaborative step, and self-similarity means the same
step rule serves groups of every size (including singletons, whose only
``f``-conserving, ``h``-decreasing option is usually to stutter).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence

from ..core.multiset import Multiset
from .agent import Agent

__all__ = ["Group"]


class Group:
    """An ordered group of agent ids (order fixes how step rules see states).

    A plain slotted class rather than a dataclass: schedulers build one
    ``Group`` per connected component per round (tens of thousands per
    second at large n), so construction cost matters.  Value semantics
    (equality, hashing) follow the ``members`` tuple, as before.
    """

    __slots__ = ("members",)

    def __init__(self, members: tuple[int, ...]):
        self.members = members

    @classmethod
    def of(cls, members: Iterable[int]) -> "Group":
        """Build a group from any iterable of agent ids (sorted for determinism)."""
        return cls(tuple(sorted(members)))

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Group):
            return self.members == other.members
        return NotImplemented

    def __hash__(self) -> int:
        return hash((Group, self.members))

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __contains__(self, agent_id: int) -> bool:
        return agent_id in self.members

    @property
    def is_singleton(self) -> bool:
        """True when the group contains exactly one agent."""
        return len(self.members) == 1

    def states_of(self, agents: Sequence[Agent]) -> list[Hashable]:
        """Return the member agents' states, in member order."""
        return [agents[agent_id].state for agent_id in self.members]

    def state_multiset(self, agents: Sequence[Agent]) -> Multiset:
        """Return the group state ``S_B`` as a multiset."""
        return Multiset(self.states_of(agents))

    def install(
        self, agents: Sequence[Agent], new_states: Sequence[Hashable]
    ) -> tuple[list[Hashable], list[Hashable]]:
        """Write new states back to the member agents.

        Returns the ``(removed, added)`` state delta: the old and the new
        state of every member agent whose state actually changed, aligned
        by position.  The simulator folds this delta into its maintained
        round multiset, so a round's bookkeeping costs O(|delta|) rather
        than O(num_agents); ``len(removed)`` is the changed-agent count.
        """
        removed: list[Hashable] = []
        added: list[Hashable] = []
        for agent_id, new_state in zip(self.members, new_states):
            agent = agents[agent_id]
            old_state = agent.state
            if agent.update(new_state):
                removed.append(old_state)
                added.append(new_state)
        return removed, added

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Group({list(self.members)})"
