"""String-keyed registries: the naming layer of the declarative experiment API.

Experiments become *data* (see :mod:`repro.experiment`) only if every
building block — algorithm, environment, scheduler, topology graph, value
generator — can be named by a string and rebuilt from that name plus a
dictionary of parameters.  This module provides the registries that do the
naming, and the decorators the concrete modules use to register themselves::

    from repro.registry import register_algorithm

    @register_algorithm("minimum")
    def minimum_algorithm(partial: bool = False) -> SelfSimilarAlgorithm:
        ...

Every registry supports :meth:`Registry.build` (instantiate by name with
keyword parameters, with helpful errors on unknown names or bad
parameters) and :meth:`Registry.available` (sorted names, for
introspection, CLI listings and error messages).

The registries themselves never import the modules that populate them, so
there are no circular imports; :mod:`repro.experiment` imports the
concrete packages to guarantee registration has happened before specs are
validated.

Two small hooks make *instance-bound* algorithms (§4.4, §4.5 of the paper:
sorting, hulls — algorithms whose factory needs the concrete problem
instance) fit the same declarative mold:

* ``prepare(params, values)`` maps the spec's algorithm parameters plus
  the resolved initial values to the final factory keyword arguments
  (e.g. ``maximum`` derives its ``upper_bound`` from the values, and
  ``sorting`` receives the values themselves);
* ``adapt_values(algorithm, values)`` maps the resolved values to the
  per-agent initial inputs the simulator needs (e.g. sorting turns values
  into ``(index, value)`` cells via the built algorithm's
  ``instance_cells``).
"""

from __future__ import annotations

import importlib
import inspect
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from .core.errors import SpecificationError

__all__ = [
    "Registry",
    "RegistryEntry",
    "ALGORITHMS",
    "ENVIRONMENTS",
    "SCHEDULERS",
    "GRAPHS",
    "VALUE_GENERATORS",
    "PROBES",
    "ENGINES",
    "register_algorithm",
    "register_environment",
    "register_scheduler",
    "register_graph",
    "register_value_generator",
    "register_probe",
    "register_engine",
    "available",
    "load_plugins",
    "PLUGIN_GROUP",
    "PLUGIN_ENV_VAR",
]


@dataclass(frozen=True)
class RegistryEntry:
    """One registered factory plus the metadata the experiment layer uses."""

    name: str
    factory: Callable[..., Any]
    #: Optional hook ``(params, values) -> params`` producing the final
    #: factory kwargs from the spec parameters and the resolved values.
    prepare: Callable[[dict, list], dict] | None = None
    #: Optional hook ``(built_object, values) -> values`` producing the
    #: simulator's per-agent initial inputs.
    adapt_values: Callable[[Any, list], list] | None = None
    #: Free-form metadata (documentation tags, defaults, ...).
    meta: Mapping[str, Any] = field(default_factory=dict)

    @property
    def summary(self) -> str:
        """First line of the factory's docstring (for ``repro list``)."""
        doc = inspect.getdoc(self.factory) or ""
        return doc.splitlines()[0] if doc else ""


class Registry:
    """A string-keyed registry of factories of one kind of building block."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    # -- registration ----------------------------------------------------------

    def register(
        self,
        name: str,
        *,
        prepare: Callable[[dict, list], dict] | None = None,
        adapt_values: Callable[[Any, list], list] | None = None,
        **meta: Any,
    ) -> Callable[[Callable], Callable]:
        """Return a decorator registering its target under ``name``.

        The decorated factory (function or class) is returned unchanged,
        so registration never alters call sites that import it directly.
        """
        if not name or not isinstance(name, str):
            raise SpecificationError(f"{self.kind} registry needs a non-empty string name")

        def decorator(factory: Callable) -> Callable:
            if name in self._entries:
                raise SpecificationError(
                    f"duplicate {self.kind} registration for {name!r} "
                    f"({self._entries[name].factory!r} vs {factory!r})"
                )
            self._entries[name] = RegistryEntry(
                name=name,
                factory=factory,
                prepare=prepare,
                adapt_values=adapt_values,
                meta=dict(meta),
            )
            return factory

        return decorator

    # -- lookup ----------------------------------------------------------------

    def available(self) -> list[str]:
        """Sorted names of everything registered."""
        return sorted(self._entries)

    def items(self) -> list[tuple[str, RegistryEntry]]:
        """Sorted ``(name, entry)`` pairs — full introspection of the
        registry's contents (used by ``repro list`` tooling and the
        static analyzer's registry-aware rules)."""
        return sorted(self._entries.items())

    def source_of(self, name: str) -> tuple[str, int] | None:
        """``(file, line)`` where the factory registered under ``name`` is
        defined, or None when the source is unavailable (C extensions,
        interactively defined factories)."""
        factory = self.entry(name).factory
        try:
            return (
                inspect.getsourcefile(factory) or "",
                inspect.getsourcelines(factory)[1],
            )
        except (OSError, TypeError):
            return None

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.available())

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, name: str) -> RegistryEntry:
        """Return the entry registered under ``name`` (with a helpful error)."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.available()) or "(none registered)"
            raise SpecificationError(
                f"unknown {self.kind} {name!r}; available: {known}"
            ) from None

    def get(self, name: str) -> Callable:
        """Return the raw registered factory."""
        return self.entry(name).factory

    def build(self, name: str, **params: Any) -> Any:
        """Instantiate the factory registered under ``name``.

        Parameter errors (unknown keyword, missing required argument) are
        reported as :class:`SpecificationError` naming the offending
        registry entry, so a bad JSON spec fails with a readable message
        instead of a bare ``TypeError``.
        """
        entry = self.entry(name)
        try:
            return entry.factory(**params)
        except TypeError as error:
            raise SpecificationError(
                f"cannot build {self.kind} {name!r} with parameters "
                f"{params!r}: {error}"
            ) from error

    def signature(self, name: str) -> inspect.Signature:
        """The factory's signature (used to inject seeds, for introspection)."""
        return inspect.signature(self.entry(name).factory)

    def accepts(self, name: str, parameter: str) -> bool:
        """True when the factory accepts ``parameter`` as a keyword."""
        signature = self.signature(name)
        if parameter in signature.parameters:
            return True
        return any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, {len(self)} entries)"


#: The paper's self-similar algorithms, keyed by CLI/spec name.
ALGORITHMS = Registry("algorithm")
#: Environment models (static, churn, adversaries, mobility, dynamics).
ENVIRONMENTS = Registry("environment")
#: Group schedulers.
SCHEDULERS = Registry("scheduler")
#: Fixed communication topology constructors.
GRAPHS = Registry("graph")
#: Named generators of initial-value instances.
VALUE_GENERATORS = Registry("value generator")
#: Observation probes attachable to any engine run
#: (see :mod:`repro.simulation.probes`).
PROBES = Registry("probe")
#: Execution engines implementing the :class:`repro.simulation.Engine`
#: protocol ("reference" = the byte-identical object-per-agent
#: Simulator, "array" = the struct-of-arrays vectorized engine).
ENGINES = Registry("engine")

register_algorithm = ALGORITHMS.register
register_environment = ENVIRONMENTS.register
register_scheduler = SCHEDULERS.register
register_graph = GRAPHS.register
register_value_generator = VALUE_GENERATORS.register
register_probe = PROBES.register
register_engine = ENGINES.register


def available() -> dict[str, list[str]]:
    """Everything registered, per kind — the single introspection entry point."""
    return {
        "algorithms": ALGORITHMS.available(),
        "environments": ENVIRONMENTS.available(),
        "schedulers": SCHEDULERS.available(),
        "graphs": GRAPHS.available(),
        "value_generators": VALUE_GENERATORS.available(),
        "probes": PROBES.available(),
        "engines": ENGINES.available(),
    }


# -- third-party plugin discovery ------------------------------------------------

#: Entry-point group external packages register their plugin modules under.
PLUGIN_GROUP = "repro.plugins"

#: Environment variable naming extra plugin modules (comma-separated
#: importable module names) — the offline-friendly path: no packaging
#: metadata needed, just a module on ``sys.path``.
PLUGIN_ENV_VAR = "REPRO_PLUGINS"

#: Plugin sources already loaded this process (idempotence guard: the
#: ``@register_*`` decorators reject duplicate names, so a plugin module
#: must take effect exactly once however many times discovery runs).
_LOADED_PLUGINS: set[str] = set()


def load_plugins(
    group: str = PLUGIN_GROUP, env_var: str | None = PLUGIN_ENV_VAR
) -> list[str]:
    """Discover and import third-party plugin modules.

    The chirp ``directory.register`` idiom: an external package makes its
    algorithms, environments, schedulers, graphs, value generators and
    probes spec-addressable simply by *importing* — its module body applies
    the ``@register_*`` decorators, exactly like the built-in packages do.
    Two discovery channels feed this loader:

    * entry points in the ``repro.plugins`` group (standard packaging
      metadata — ``[project.entry-points."repro.plugins"]`` in a
      plugin's ``pyproject.toml``);
    * the ``REPRO_PLUGINS`` environment variable, a comma-separated list
      of importable module names, for plugins that are just a file on
      ``sys.path`` (no installation step, works offline).

    Loading is idempotent per process; a plugin that fails to import or
    registers a duplicate name raises :class:`SpecificationError` naming
    the offending source.  Returns the sources newly loaded by this call.
    """
    loaded: list[str] = []

    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        entry_points = None
    if entry_points is not None:
        try:
            found = entry_points(group=group)
        except TypeError:  # pragma: no cover - pre-3.10 selection API
            found = entry_points().get(group, ())
        for point in found:
            key = f"entry-point:{point.name}"
            if key in _LOADED_PLUGINS:
                continue
            try:
                point.load()
            except SpecificationError:
                raise
            except Exception as error:
                raise SpecificationError(
                    f"cannot load repro plugin entry point {point.name!r} "
                    f"({point.value}): {error}"
                ) from error
            _LOADED_PLUGINS.add(key)
            loaded.append(key)

    names = os.environ.get(env_var, "") if env_var else ""
    for name in (part.strip() for part in names.split(",")):
        if not name:
            continue
        key = f"module:{name}"
        if key in _LOADED_PLUGINS:
            continue
        try:
            importlib.import_module(name)
        except SpecificationError:
            raise
        except Exception as error:
            raise SpecificationError(
                f"cannot import repro plugin module {name!r} "
                f"(from ${env_var}): {error}"
            ) from error
        _LOADED_PLUGINS.add(key)
        loaded.append(key)
    return loaded


def values_adapter(attribute: str) -> Callable[[Any, Sequence], list]:
    """Build an ``adapt_values`` hook reading instance inputs off the built
    algorithm (``instance_cells`` for sorting, ``instance_blocks`` for
    block sorting)."""

    def adapt(algorithm: Any, values: Sequence) -> list:
        return list(getattr(algorithm, attribute))

    return adapt
