"""Online (single-pass, streaming) evaluation of the temporal operators.

:mod:`repro.temporal.formulas` evaluates the paper's temporal-logic
operators over a *recorded* :class:`~repro.temporal.trace.Trace`.  That
requires materialising every state — exactly what a bounded-memory
streaming run must avoid.  This module provides the same operators as
*online evaluators*: each formula consumes the state stream one element at
a time in O(1) memory and can report its verdict at any point.

The semantics are the finite-trace (LTLf) semantics of the offline
functions, bit for bit: for every operator, feeding a trace's states
through the online evaluator and asking for ``verdict(trace.complete)``
returns exactly what the corresponding function in
:mod:`repro.temporal.formulas` returns on that trace (the parity test
suite enforces this).  Safety operators (``always``, ``never``,
``stable``, ``invariant``) are conclusive on any prefix; liveness
operators (``eventually``, ``leads_to``, ``until``,
``infinitely_often``) additionally use the completeness bit — whether the
final observed state is a fixpoint that would repeat forever — passed to
:meth:`OnlineFormula.verdict`.

The :class:`~repro.simulation.probes.TemporalProbe` feeds these evaluators
from the engine's round stream, which is what makes temporal-logic
observability an O(1)-memory plugin instead of an after-the-fact scrape of
the full trace.
"""

from __future__ import annotations

from typing import Callable, TypeVar

State = TypeVar("State")
Predicate = Callable[[State], bool]

__all__ = ["OnlineFormula", "OPERATORS", "online"]


class OnlineFormula:
    """One temporal formula evaluated incrementally over a state stream.

    Subclasses override :meth:`observe` (fold one state into O(1) internal
    state) and :meth:`verdict` (the formula's truth value on the states
    observed so far, given whether that prefix is complete).
    """

    #: Operator name, matching the function in :mod:`repro.temporal.formulas`.
    operator: str = ""
    #: How many predicates the operator takes.
    arity: int = 1

    def observe(self, state: State) -> None:
        raise NotImplementedError

    def verdict(self, complete: bool = False) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore the evaluator to its no-states-observed condition."""
        self.__init__(*self._predicates)  # type: ignore[misc]

    def __init__(self, *predicates: Predicate):
        self._predicates = predicates

    def state_dict(self) -> dict:
        """The evaluator's O(1) fold state as JSON-safe data.

        Every concrete operator keeps only booleans/None, so the generic
        capture — all instance attributes except the predicates (which are
        live callables, re-resolved by whoever rebuilds the formula) — is
        exact, and a restored evaluator continues the fold bit for bit.
        """
        return {
            key: value
            for key, value in self.__dict__.items()
            if key != "_predicates" and not callable(value)
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (predicates are untouched)."""
        self.__dict__.update(state)


class _Always(OnlineFormula):
    """``□P``: the predicate holds in every observed state."""

    operator = "always"

    def __init__(self, predicate: Predicate):
        super().__init__(predicate)
        self._predicate = predicate
        self._ok = True

    def observe(self, state: State) -> None:
        if self._ok and not self._predicate(state):
            self._ok = False

    def verdict(self, complete: bool = False) -> bool:
        return self._ok


class _Invariant(_Always):
    """Alias of ``always``, matching the paper's use of *invariant*."""

    operator = "invariant"


class _Never(OnlineFormula):
    """``□¬P``: the predicate holds in no observed state."""

    operator = "never"

    def __init__(self, predicate: Predicate):
        super().__init__(predicate)
        self._predicate = predicate
        self._ok = True

    def observe(self, state: State) -> None:
        if self._ok and self._predicate(state):
            self._ok = False

    def verdict(self, complete: bool = False) -> bool:
        return self._ok


class _Eventually(OnlineFormula):
    """``◇P``: the predicate holds in some observed state."""

    operator = "eventually"

    def __init__(self, predicate: Predicate):
        super().__init__(predicate)
        self._predicate = predicate
        self._seen = False

    def observe(self, state: State) -> None:
        if not self._seen and self._predicate(state):
            self._seen = True

    def verdict(self, complete: bool = False) -> bool:
        return self._seen


class _Stable(OnlineFormula):
    """``stable P``: once the predicate holds it continues to hold."""

    operator = "stable"

    def __init__(self, predicate: Predicate):
        super().__init__(predicate)
        self._predicate = predicate
        self._seen = False
        self._ok = True

    def observe(self, state: State) -> None:
        holds = self._predicate(state)
        if self._seen and not holds:
            self._ok = False
        self._seen = self._seen or holds

    def verdict(self, complete: bool = False) -> bool:
        return self._ok


class _LeadsTo(OnlineFormula):
    """``P ↝ Q``: every ``P``-state is followed (or accompanied) by a
    ``Q``-state; a pending obligation at the end is excused only on
    incomplete prefixes."""

    operator = "leads_to"
    arity = 2

    def __init__(self, premise: Predicate, conclusion: Predicate):
        super().__init__(premise, conclusion)
        self._premise = premise
        self._conclusion = conclusion
        self._pending = False

    def observe(self, state: State) -> None:
        if self._conclusion(state):
            self._pending = False
        if self._premise(state) and not self._conclusion(state):
            self._pending = True

    def verdict(self, complete: bool = False) -> bool:
        if not self._pending:
            return True
        return not complete


class _Until(OnlineFormula):
    """``P U Q``: ``P`` holds strictly before the first ``Q``-state, and
    ``Q`` does hold somewhere (still-possible on incomplete prefixes)."""

    operator = "until"
    arity = 2

    def __init__(self, hold: Predicate, release: Predicate):
        super().__init__(hold, release)
        self._hold = hold
        self._release = release
        self._decided: bool | None = None

    def observe(self, state: State) -> None:
        if self._decided is not None:
            return
        if self._release(state):
            self._decided = True
        elif not self._hold(state):
            self._decided = False

    def verdict(self, complete: bool = False) -> bool:
        if self._decided is not None:
            return self._decided
        return not complete


class _InfinitelyOften(OnlineFormula):
    """``□◇P`` on a finite prefix: the final state satisfies ``P`` when the
    prefix is complete; otherwise, ``P`` held at least once."""

    operator = "infinitely_often"

    def __init__(self, predicate: Predicate):
        super().__init__(predicate)
        self._predicate = predicate
        self._observed = False
        self._ever = False
        self._last = False

    def observe(self, state: State) -> None:
        self._observed = True
        self._last = self._predicate(state)
        self._ever = self._ever or self._last

    def verdict(self, complete: bool = False) -> bool:
        if not self._observed:
            return False
        return self._last if complete else self._ever


class _EventuallyAlways(OnlineFormula):
    """``◇□P``: some suffix satisfies ``P`` throughout — on a finite trace,
    exactly "the final observed state satisfies ``P``"."""

    operator = "eventually_always"

    def __init__(self, predicate: Predicate):
        super().__init__(predicate)
        self._predicate = predicate
        self._observed = False
        self._last = False

    def observe(self, state: State) -> None:
        self._observed = True
        self._last = self._predicate(state)

    def verdict(self, complete: bool = False) -> bool:
        return self._observed and self._last


class _HoldsAtEnd(_EventuallyAlways):
    """The final observed state satisfies the predicate."""

    operator = "holds_at_end"


#: Operator name → online evaluator class, mirroring
#: :data:`repro.temporal.formulas.__all__`.
OPERATORS: dict[str, type[OnlineFormula]] = {
    cls.operator: cls
    for cls in (
        _Always,
        _Invariant,
        _Never,
        _Eventually,
        _Stable,
        _LeadsTo,
        _Until,
        _InfinitelyOften,
        _EventuallyAlways,
        _HoldsAtEnd,
    )
}


def online(operator: str, *predicates: Predicate) -> OnlineFormula:
    """Build the online evaluator for ``operator`` over ``predicates``.

    >>> formula = online("eventually", lambda s: s == 0)
    >>> formula.observe(3); formula.observe(0)
    >>> formula.verdict()
    True
    """
    try:
        cls = OPERATORS[operator]
    except KeyError:
        known = ", ".join(sorted(OPERATORS))
        raise ValueError(
            f"unknown temporal operator {operator!r}; available: {known}"
        ) from None
    if len(predicates) != cls.arity:
        raise ValueError(
            f"temporal operator {operator!r} takes {cls.arity} predicate(s), "
            f"got {len(predicates)}"
        )
    return cls(*predicates)
