"""Finite-trace temporal logic used to check the paper's specifications."""

from .formulas import (
    always,
    eventually,
    eventually_always,
    holds_at_end,
    infinitely_often,
    invariant,
    leads_to,
    never,
    stable,
    until,
)
from .online import OnlineFormula, OPERATORS, online
from .trace import Trace

__all__ = [
    "Trace",
    "OnlineFormula",
    "OPERATORS",
    "online",
    "always",
    "eventually",
    "eventually_always",
    "holds_at_end",
    "infinitely_often",
    "invariant",
    "leads_to",
    "never",
    "stable",
    "until",
]
