"""Finite-trace temporal logic used to check the paper's specifications."""

from .formulas import (
    always,
    eventually,
    eventually_always,
    holds_at_end,
    infinitely_often,
    invariant,
    leads_to,
    never,
    stable,
    until,
)
from .trace import Trace

__all__ = [
    "Trace",
    "always",
    "eventually",
    "eventually_always",
    "holds_at_end",
    "infinitely_often",
    "invariant",
    "leads_to",
    "never",
    "stable",
    "until",
]
