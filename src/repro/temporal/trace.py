"""Computation traces.

The paper specifies algorithms with linear-time temporal logic over
*computations* — sequences of system states ``(G, S)`` starting from an
initial state.  A simulation produces a finite prefix of such a computation;
this module provides the :class:`Trace` container that temporal formulas in
:mod:`repro.temporal.formulas` are evaluated against.

A trace stores arbitrary state objects.  Formulas receive a state and return
a truth value, so the same machinery checks properties of plain agent-state
multisets, of full ``(G, S)`` pairs, or of rich simulation snapshots.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, Sequence, TypeVar

State = TypeVar("State")

__all__ = ["Trace"]


class Trace(Generic[State]):
    """A finite sequence of states observed during one computation.

    Parameters
    ----------
    states:
        The successive states, in order.  The first element is the initial
        state of the computation.
    complete:
        True when the computation is known to have reached a point after
        which the agent state can no longer change (e.g. the simulator
        detected a fixpoint and every later state would repeat the last
        one).  Liveness formulas (``eventually``, ``leads_to``) are only
        conclusive on complete traces; on incomplete traces they report
        what the observed prefix supports.
    """

    def __init__(self, states: Iterable[State] = (), complete: bool = False):
        self._states: list[State] = list(states)
        self.complete = complete

    # -- sequence protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[State]:
        return iter(self._states)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self._states[index], complete=self.complete and
                         (index.stop is None or index.stop >= len(self._states)))
        return self._states[index]

    def __bool__(self) -> bool:
        return bool(self._states)

    def __eq__(self, other) -> bool:
        if isinstance(other, Trace):
            return self._states == other._states and self.complete == other.complete
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        suffix = "complete" if self.complete else "prefix"
        return f"Trace(length={len(self._states)}, {suffix})"

    # -- construction ---------------------------------------------------------

    def append(self, state: State) -> None:
        """Append a state observed after the current last state."""
        self._states.append(state)

    def mark_complete(self) -> None:
        """Declare that the trace has reached a terminal fixpoint."""
        self.complete = True

    @property
    def states(self) -> Sequence[State]:
        """The underlying list of states (read-only view by convention)."""
        return self._states

    @property
    def initial(self) -> State:
        """The initial state of the computation."""
        if not self._states:
            raise IndexError("empty trace has no initial state")
        return self._states[0]

    @property
    def final(self) -> State:
        """The last observed state."""
        if not self._states:
            raise IndexError("empty trace has no final state")
        return self._states[-1]

    def suffix(self, start: int) -> "Trace[State]":
        """Return the suffix trace starting at position ``start``."""
        return Trace(self._states[start:], complete=self.complete)

    def map(self, projection: Callable[[State], object]) -> "Trace":
        """Return a new trace whose states are ``projection`` of this one's."""
        return Trace((projection(state) for state in self._states),
                     complete=self.complete)

    def pairs(self) -> Iterator[tuple[State, State]]:
        """Iterate over consecutive ``(state, next_state)`` pairs."""
        for index in range(len(self._states) - 1):
            yield self._states[index], self._states[index + 1]

    def stutter_free(self) -> "Trace[State]":
        """Return the trace with consecutive duplicate states collapsed."""
        collapsed: list[State] = []
        for state in self._states:
            if not collapsed or collapsed[-1] != state:
                collapsed.append(state)
        return Trace(collapsed, complete=self.complete)
