"""Finite-trace evaluation of the temporal operators used in the paper.

The paper states its specifications with linear-time temporal logic
(Manna & Pnueli):

* ``□P`` (*henceforth* / *always*): ``P`` holds in every state;
* ``◇P`` (*eventually*): ``P`` holds in some state;
* ``□◇P`` (*infinitely often*): ``P`` holds infinitely often;
* ``stable P``: once ``P`` holds, it holds forever  (``P ⇒ □P``);
* ``P ↝ Q`` (*leads-to*): whenever ``P`` holds, ``Q`` holds then or later.

Simulations yield finite prefixes of infinite computations, so this module
evaluates the *finite-trace* versions of these operators.  Safety operators
(``always``, ``stable``, ``invariant``) are conclusive on any prefix: a
violation in the prefix is a violation of the infinite computation.
Liveness operators (``eventually``, ``leads_to``, ``infinitely_often``) are
conclusive only when the trace is marked *complete* — i.e. the simulator
established that the final state is a fixpoint that would repeat forever.
On an incomplete prefix they are evaluated optimistically on the observed
states, which is the standard finite-trace (LTLf) reading.

Every function takes a :class:`~repro.temporal.trace.Trace` and a predicate
(callable from state to bool) and returns a plain ``bool``, so they compose
naturally with ``pytest`` assertions and with the verification helpers in
:mod:`repro.verification`.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from .trace import Trace

State = TypeVar("State")
Predicate = Callable[[State], bool]

__all__ = [
    "always",
    "eventually",
    "never",
    "stable",
    "invariant",
    "leads_to",
    "infinitely_often",
    "eventually_always",
    "holds_at_end",
    "until",
]


def always(trace: Trace[State], predicate: Predicate) -> bool:
    """``□P``: the predicate holds in every state of the trace."""
    return all(predicate(state) for state in trace)


def invariant(trace: Trace[State], predicate: Predicate) -> bool:
    """Alias of :func:`always`, matching the paper's use of *invariant*."""
    return always(trace, predicate)


def never(trace: Trace[State], predicate: Predicate) -> bool:
    """``□¬P``: the predicate holds in no state of the trace."""
    return all(not predicate(state) for state in trace)


def eventually(trace: Trace[State], predicate: Predicate) -> bool:
    """``◇P``: the predicate holds in some state of the trace."""
    return any(predicate(state) for state in trace)


def stable(trace: Trace[State], predicate: Predicate) -> bool:
    """``stable P``: once the predicate holds it continues to hold.

    Equivalent to: there is no pair of positions ``i < j`` with ``P`` true
    at ``i`` and false at ``j``.
    """
    seen = False
    for state in trace:
        holds = predicate(state)
        if seen and not holds:
            return False
        seen = seen or holds
    return True


def leads_to(trace: Trace[State], premise: Predicate, conclusion: Predicate) -> bool:
    """``P ↝ Q``: every state satisfying ``P`` is followed (or accompanied)
    by a state satisfying ``Q``.

    On an incomplete trace, a pending obligation at the very end (``P`` held
    but ``Q`` has not been observed yet) is treated as satisfied only when
    the trace is not marked complete — the computation might still fulfil
    it.  On a complete trace the obligation must be discharged within the
    trace.
    """
    states = list(trace)
    pending = False
    for state in states:
        if conclusion(state):
            pending = False
        if premise(state) and not conclusion(state):
            pending = True
    if not pending:
        return True
    return not trace.complete


def until(trace: Trace[State], hold: Predicate, release: Predicate) -> bool:
    """``P U Q``: ``P`` holds at every position strictly before the first
    position where ``Q`` holds, and ``Q`` does hold somewhere.

    On incomplete traces where ``Q`` never holds, the property is regarded
    as still possible provided ``P`` held throughout the prefix.
    """
    for state in trace:
        if release(state):
            return True
        if not hold(state):
            return False
    return not trace.complete


def infinitely_often(trace: Trace[State], predicate: Predicate) -> bool:
    """``□◇P`` evaluated on a finite trace.

    On a complete trace (whose final state repeats forever) this means the
    final state satisfies ``P``.  On an incomplete prefix, we report whether
    the predicate held at least once — the best finite evidence available.
    """
    if len(trace) == 0:
        return False
    if trace.complete:
        return predicate(trace.final)
    return eventually(trace, predicate)


def eventually_always(trace: Trace[State], predicate: Predicate) -> bool:
    """``◇□P``: from some point onward, the predicate holds in every state.

    On a finite trace this means there is a suffix on which the predicate
    always holds; for a complete trace this is also what holds of the
    infinite extension, because the final state repeats.
    """
    states = list(trace)
    if not states:
        return False
    holds_from_here = True
    # Scan from the end: find the longest suffix where predicate always holds.
    for index in range(len(states) - 1, -1, -1):
        if not predicate(states[index]):
            holds_from_here = index < len(states) - 1
            return holds_from_here
    return True


def holds_at_end(trace: Trace[State], predicate: Predicate) -> bool:
    """Return True when the final observed state satisfies the predicate."""
    if len(trace) == 0:
        return False
    return predicate(trace.final)
