"""Command-line interface: run declarative experiments from a shell.

The CLI is a front-end to the experiment layer (:mod:`repro.experiment`):
experiments are JSON specs, dispatched through the registries and the
:class:`~repro.simulation.batch.BatchRunner`::

    python -m repro list                       # everything registered
    python -m repro list algorithms
    python -m repro run examples/specs/minimum_churn.json
    python -m repro run spec.json --seed 3 --workers 4 --json
    python -m repro run spec.json --history none --jsonl rounds-{seed}.jsonl \
        --probe temporal
    python -m repro run spec.json --checkpoint-every 100 --checkpoint-dir ckpts
    python -m repro resume ckpts/minimum-seed0/latest.json
    python -m repro sweep spec.json --param environment_params.edge_up_probability \
        --values 0.1,0.3,1.0

The experiment service (see :mod:`repro.service`) rides the same specs::

    python -m repro serve --port 8765 --data-dir service-data
    python -m repro submit spec.json --wait --json
    python -m repro submit spec.json --events      # live probe payloads
    python -m repro status run-0001 --json

Fault injection (see :mod:`repro.faults`) verifies that recovery is
byte-identical to an unfaulted run, under a seeded, replayable plan::

    python -m repro chaos examples/specs/minimum_chaos.json --fault-seed 7
    python -m repro chaos spec.json --mode service --kinds http-flaky,sse-disconnect

The static determinism/protocol linter (see :mod:`repro.analysis`) ships
as a subcommand too, so CI and pre-commit hooks need no extra tooling::

    python -m repro lint src tests --baseline lint_baseline.json
    python -m repro lint src --format github      # ::error annotations
    python -m repro lint src tests --baseline lint_baseline.json \
        --update-baseline                         # deliberate suppressions

The original positional interface is kept as a compatibility layer and is
itself rebuilt on top of specs — ``repro minimum --agents 10 --churn 0.3``
constructs the equivalent :class:`~repro.experiment.ExperimentSpec` and
runs it, so both interfaces execute through the same code path::

    python -m repro --list
    python -m repro minimum  --agents 10 --churn 0.3 --seed 7
    python -m repro sorting  --values 9,2,7,1 --environment line

The exit status is 0 when every run converged to the correct answer and 1
otherwise, so both interfaces slot into smoke-test scripts.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
from typing import Sequence

from .core.errors import SpecificationError
from .experiment import ExperimentSpec
from .registry import available, load_plugins
from .simulation.batch import BatchItem, BatchResult, BatchRunner
from .verification import check_specification

__all__ = ["main", "build_parser", "ALGORITHMS", "ENVIRONMENTS", "SUBCOMMANDS"]

#: Algorithms the legacy CLI can run, keyed by the name used on the command line.
ALGORITHMS = (
    "minimum",
    "maximum",
    "sum",
    "average",
    "second-smallest",
    "kth-smallest",
    "sorting",
    "hull",
)

#: Environment presets of the legacy CLI, keyed by command-line name.
ENVIRONMENTS = ("static", "churn", "line", "partition", "blackout", "mobility")

#: Spec-driven subcommands (anything else falls through to the legacy parser).
SUBCOMMANDS = (
    "run",
    "list",
    "sweep",
    "resume",
    "serve",
    "submit",
    "status",
    "lint",
    "chaos",
)

#: ``repro list`` sections, in display order.
_LIST_KINDS = (
    "algorithms",
    "environments",
    "schedulers",
    "engines",
    "graphs",
    "value_generators",
    "probes",
)


# -- the legacy (compatibility) interface --------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Build the legacy CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Run a self-similar algorithm in a simulated dynamic distributed "
            "system.  Spec-driven interface: repro run|list|sweep --help."
        ),
    )
    parser.add_argument("algorithm", nargs="?", choices=ALGORITHMS, help="computation to run")
    parser.add_argument("--list", action="store_true", help="list algorithms and environments")
    parser.add_argument("--agents", type=int, default=8, help="number of agents (default 8)")
    parser.add_argument(
        "--values",
        type=str,
        default=None,
        help="comma-separated input values (default: seeded random instance)",
    )
    parser.add_argument(
        "--environment",
        choices=ENVIRONMENTS,
        default="churn",
        help="environment preset (default: churn)",
    )
    parser.add_argument(
        "--churn", type=float, default=0.3, help="edge up-probability for the churn preset"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--max-rounds", type=int, default=2000, help="round cap")
    parser.add_argument("--k", type=int, default=3, help="k for kth-smallest")
    parser.add_argument(
        "--verbose", action="store_true", help="also print the trace-level specification check"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the SimulationResult as JSON"
    )
    return parser


def _parse_values(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip() != ""]
    except ValueError as error:
        raise SystemExit(f"--values must be a comma-separated list of integers: {error}")


def _default_values(num_agents: int, seed: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.randint(0, 99) for _ in range(num_agents)]


#: Legacy environment presets as (registered environment, params, topology).
_ENVIRONMENT_PRESETS = {
    "static": ("static", {}, "complete"),
    "churn": ("churn", {}, "complete"),
    "line": ("churn", {}, "line"),
    "partition": ("rotating-partition", {"num_blocks": 2, "rotate_every": 3}, "complete"),
    "blackout": ("blackout", {"period": 10, "blackout_rounds": 6}, "complete"),
    "mobility": (
        "mobility",
        {"arena_size": 100.0, "range_radius": 35.0, "speed": 8.0},
        None,
    ),
}


def _legacy_spec(args: argparse.Namespace, values: list[int]) -> ExperimentSpec:
    """Translate legacy command-line arguments into an experiment spec."""
    environment, environment_params, topology = _ENVIRONMENT_PRESETS[args.environment]
    environment_params = dict(environment_params)
    if environment == "churn":
        environment_params["edge_up_probability"] = args.churn
    if topology is not None:
        environment_params["topology"] = topology

    algorithm = args.algorithm
    algorithm_params: dict = {}
    initial_values: list = list(values)
    if algorithm == "kth-smallest":
        algorithm_params["k"] = args.k
    elif algorithm == "hull":
        rng = random.Random(args.seed)
        initial_values = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in values]

    return ExperimentSpec(
        algorithm=algorithm,
        algorithm_params=algorithm_params,
        environment=environment,
        environment_params=environment_params,
        initial_values=tuple(initial_values),
        seeds=(args.seed,),
        max_rounds=args.max_rounds,
    ).validate()


def _legacy_main(argv: Sequence[str] | None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or args.algorithm is None:
        print("algorithms:   " + ", ".join(ALGORITHMS))
        print("environments: " + ", ".join(ENVIRONMENTS))
        return 0

    values = _parse_values(args.values) if args.values else _default_values(args.agents, args.seed)
    if args.values:
        args.agents = len(values)
    if args.agents < 1:
        raise SystemExit("--agents must be at least 1")

    try:
        spec = _legacy_spec(args, values)
        simulator = spec.build(args.seed)
    except SpecificationError as error:
        raise SystemExit(str(error))
    result = simulator.run(max_rounds=spec.max_rounds)

    if args.json:
        print(result.to_json(indent=2))
        return 0 if result.converged and result.correct else 1

    print(f"algorithm:    {simulator.algorithm.name}")
    print(f"environment:  {simulator.environment.describe()}")
    print(f"inputs:       {list(values)}")
    print(f"converged:    {result.converged} "
          f"(round {result.convergence_round}, {result.group_steps} group steps)")
    print(f"output:       {result.output}")
    print(f"expected:     {result.expected_output}")
    if args.verbose:
        report = check_specification(simulator.algorithm, result.trace)
        print(f"specification: {report.explain()}")

    return 0 if result.converged and result.correct else 1


# -- the spec-driven interface --------------------------------------------------


def build_spec_parser() -> argparse.ArgumentParser:
    """Build the parser for the ``run`` / ``list`` / ``sweep`` subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative experiments over self-similar algorithms.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run an experiment spec (JSON file)")
    run.add_argument("spec", type=pathlib.Path, help="path to an ExperimentSpec JSON file")
    run.add_argument("--seed", type=int, action="append", default=None,
                     help="override the spec's seeds (repeatable)")
    run.add_argument("--max-rounds", type=int, default=None, help="override the round cap")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool size (default: in-process serial execution)")
    run.add_argument("--history", choices=("full", "objective", "none"), default=None,
                     help="override the run's retention mode (none = O(1) memory)")
    run.add_argument("--engine", choices=("reference", "array"), default=None,
                     help="override the spec's execution engine (array = "
                          "struct-of-arrays backend for large agent counts)")
    run.add_argument("--probe", action="append", dest="probes", default=None,
                     metavar="NAME[:JSON]",
                     help="attach a registered probe, e.g. temporal or "
                          "'jsonl:{\"path\": \"out.jsonl\"}' (repeatable)")
    run.add_argument("--jsonl", type=str, default=None, metavar="PATH",
                     help="stream per-round JSON lines to PATH "
                          "(shorthand for --probe jsonl; {seed} is substituted)")
    run.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                     help="write a resumable run checkpoint every N rounds "
                          "(shorthand for --probe checkpoint)")
    run.add_argument("--checkpoint-dir", type=str, default=None, metavar="DIR",
                     help="directory for rolling checkpoints (default: "
                          "checkpoints/; implies --checkpoint-every 100)")
    run.add_argument("--json", action="store_true", help="print the batch result as JSON")
    run.add_argument("--verbose", action="store_true",
                     help="also print the trace-level specification check per run")

    listing = subparsers.add_parser("list", help="list registered building blocks")
    listing.add_argument("kind", nargs="?", choices=_LIST_KINDS,
                         help="one registry (default: all)")

    resume = subparsers.add_parser(
        "resume",
        help="resume a checkpointed run to completion (byte-identical to "
             "the uninterrupted run)",
    )
    resume.add_argument("checkpoint", type=pathlib.Path,
                        help="path to a run checkpoint written by "
                             "--checkpoint-every (e.g. .../latest.json)")
    resume.add_argument("--json", action="store_true",
                        help="print the completed SimulationResult as JSON")

    sweep = subparsers.add_parser("sweep", help="run a parameter sweep of a spec")
    sweep.add_argument("spec", type=pathlib.Path, help="path to an ExperimentSpec JSON file")
    sweep.add_argument("--param", required=True, action="append", dest="params",
                       help="dotted override path, e.g. "
                            "environment_params.edge_up_probability (repeatable)")
    sweep.add_argument("--values", required=True, action="append", dest="value_lists",
                       help="comma-separated values for the matching --param")
    sweep.add_argument("--workers", type=int, default=None,
                       help="process-pool size (default: in-process serial execution)")
    sweep.add_argument("--json", action="store_true", help="print the batch result as JSON")

    serve = subparsers.add_parser(
        "serve",
        help="run the experiment service (HTTP submission, live event "
             "streams, content-addressed result cache)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (0 picks an ephemeral port)")
    serve.add_argument("--data-dir", type=pathlib.Path, default=pathlib.Path("service-data"),
                       help="durable state: jobs, checkpoints, result cache "
                            "(default: ./service-data)")
    serve.add_argument("--checkpoint-every", type=int, default=25, metavar="N",
                       help="rolling engine checkpoint cadence for queued runs")
    serve.add_argument("--retries", type=int, default=1,
                       help="per-unit retry budget (each retry resumes from "
                            "the latest checkpoint)")
    serve.add_argument("--verbose", action="store_true", help="log HTTP requests")

    submit = subparsers.add_parser(
        "submit", help="submit a spec to a running experiment service"
    )
    submit.add_argument("spec", type=pathlib.Path, help="path to an ExperimentSpec JSON file")
    submit.add_argument("--url", default="http://127.0.0.1:8765", help="service base URL")
    submit.add_argument("--param", action="append", dest="params", default=None,
                        help="sweep: dotted override path (repeatable, "
                             "pairs with --values)")
    submit.add_argument("--values", action="append", dest="value_lists", default=None,
                        help="sweep: comma-separated values for the matching --param")
    submit.add_argument("--force", action="store_true",
                        help="bypass the result cache and in-flight dedup")
    submit.add_argument("--wait", action="store_true",
                        help="block until the run finishes and print its results")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait timeout in seconds (default 300)")
    submit.add_argument("--events", action="store_true",
                        help="stream the run's probe payloads (JSON lines) "
                             "to stdout while waiting")
    submit.add_argument("--json", action="store_true",
                        help="print the job record / final status as JSON")

    lint = subparsers.add_parser(
        "lint",
        help="statically check determinism & checkpoint-protocol "
             "invariants (seeded RNG only, no unordered iteration into "
             "results, codec-coverage of checkpointed state, ...)",
    )
    lint.add_argument("paths", nargs="*", default=["src", "tests"],
                      help="files or directories to analyze (default: src tests)")
    lint.add_argument("--format", choices=("text", "json", "github", "sarif"),
                      default="text", dest="output_format",
                      help="finding output format (github emits ::error "
                           "workflow annotations; sarif emits a SARIF 2.1.0 "
                           "run for code-scanning upload)")
    lint.add_argument("--baseline", type=pathlib.Path, default=None,
                      metavar="FILE",
                      help="fingerprinted suppression baseline; findings "
                           "recorded there don't fail the run "
                           "(e.g. lint_baseline.json)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from the current findings "
                           "and exit 0 (the escape hatch — review the diff)")
    lint.add_argument("--prune", action="store_true",
                      help="with --baseline: drop stale fingerprints that no "
                           "longer match any finding, keep the rest")
    lint.add_argument("--explain", metavar="RULE", default=None,
                      help="print a rule's rationale and its golden "
                           "violating/clean fixture pair, then exit")

    chaos = subparsers.add_parser(
        "chaos",
        help="inject a seeded fault plan into a spec's execution and "
             "verify recovery is byte-identical to the unfaulted run",
    )
    chaos.add_argument("spec", type=pathlib.Path,
                       help="path to an ExperimentSpec JSON file")
    chaos.add_argument("--fault-seed", type=int, default=0, metavar="S",
                       help="seed of the generated fault plan (same seed = "
                            "same faults everywhere; default 0)")
    chaos.add_argument("--plan", type=pathlib.Path, default=None, metavar="FILE",
                       help="load an explicit fault-plan JSON file instead "
                            "of generating one from --fault-seed")
    chaos.add_argument("--kinds", type=str, default=None,
                       metavar="KIND[,KIND...]",
                       help="restrict the generated plan to these fault "
                            "kinds (crash, checkpoint-corrupt, cache-corrupt, "
                            "http-flaky, sse-disconnect)")
    chaos.add_argument("--mode", choices=("batch", "service", "all"),
                       default="all",
                       help="which seams to attack: a durable batch sweep, "
                            "a live service, or both (default)")
    chaos.add_argument("--dir", type=pathlib.Path, default=None, metavar="DIR",
                       help="working directory for the chaos run's state "
                            "(default: a fresh chaos-<fault seed>/ directory)")
    chaos.add_argument("--checkpoint-every", type=int, default=5, metavar="N",
                       help="rolling checkpoint cadence during the run "
                            "(default 5 — tight, so crashes land between "
                            "checkpoints)")
    chaos.add_argument("--plan-out", type=pathlib.Path, default=None,
                       metavar="FILE",
                       help="also write the effective fault plan JSON here")
    chaos.add_argument("--json", action="store_true",
                       help="print the full chaos report as JSON")

    status = subparsers.add_parser(
        "status", help="query a run (or the whole service) by URL"
    )
    status.add_argument("run_id", nargs="?", default=None,
                        help="run id (default: list every run and the health "
                             "summary)")
    status.add_argument("--url", default="http://127.0.0.1:8765", help="service base URL")
    status.add_argument("--json", action="store_true", help="print raw JSON")
    return parser


def _load_spec(path: pathlib.Path) -> ExperimentSpec:
    try:
        text = path.read_text()
    except OSError as error:
        raise SystemExit(f"cannot read spec {path}: {error}")
    try:
        return ExperimentSpec.from_json(text)
    except SpecificationError as error:
        raise SystemExit(f"invalid spec {path}: {error}")


def _runner(workers: int | None) -> BatchRunner:
    if workers is None:
        return BatchRunner(backend="serial")
    return BatchRunner(max_workers=workers, backend="process")


def _parse_sweep_value(text: str):
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_probe_flag(text: str):
    """Parse a ``--probe`` value: ``name`` or ``name:{json params}``."""
    name, separator, params_text = text.partition(":")
    if not separator:
        return name
    try:
        params = json.loads(params_text)
    except json.JSONDecodeError as error:
        raise SystemExit(f"--probe {text!r}: invalid JSON parameters: {error}")
    if not isinstance(params, dict):
        raise SystemExit(f"--probe {text!r}: parameters must be a JSON object")
    return {"probe": name, **params}


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    overrides: dict = {}
    if args.seed:
        overrides["seeds"] = list(args.seed)
    if args.max_rounds is not None:
        overrides["max_rounds"] = args.max_rounds
    if args.history is not None:
        overrides["history"] = args.history
    if args.engine is not None:
        overrides["engine"] = args.engine
    probe_entries = [_parse_probe_flag(text) for text in (args.probes or [])]
    if args.jsonl is not None:
        probe_entries.append({"probe": "jsonl", "path": args.jsonl})
    if args.checkpoint_every is not None or args.checkpoint_dir is not None:
        checkpoint_entry: dict = {
            "probe": "checkpoint",
            "directory": args.checkpoint_dir or "checkpoints",
        }
        if args.checkpoint_every is not None:
            checkpoint_entry["every"] = args.checkpoint_every
        probe_entries.append(checkpoint_entry)
    if probe_entries:
        overrides["probes"] = list(spec.probes) + probe_entries
    if overrides:
        try:
            spec = spec.with_updates(overrides)
        except SpecificationError as error:
            raise SystemExit(str(error))

    specification_reports: list[tuple[int, str]] = []
    if args.verbose:
        # The specification check needs live traces, so verbose mode runs
        # in-process and reuses those runs for the batch report instead of
        # executing everything twice.
        if spec.effective_history != "full":
            raise SystemExit(
                "--verbose checks the recorded trace and needs full history "
                f"(spec's effective retention is {spec.effective_history!r}); "
                "drop --verbose or the history/record_trace override — or use "
                "'--probe temporal' for the online, trace-free check"
            )
        items = []
        for seed in spec.seeds:
            simulator = spec.build(seed)
            result = simulator.run(**spec.run_kwargs())
            items.append(
                BatchItem(
                    label=spec.label,
                    seed=seed,
                    spec=spec.to_dict(),
                    result=result.to_dict(),
                )
            )
            report = check_specification(simulator.algorithm, result.trace)
            specification_reports.append((seed, report.explain()))
        batch = BatchResult(items)
    else:
        batch = _runner(args.workers).run(spec)
    if args.json:
        print(batch.to_json())
    else:
        print(f"experiment:  {spec.label}")
        print(f"algorithm:   {spec.algorithm}  environment: {spec.environment}  "
              f"scheduler: {spec.scheduler}")
        for item in batch:
            if item.error is not None:
                print(f"  seed {item.seed}: ERROR\n{item.error}")
                continue
            outcome = item.result
            status = (
                f"converged at round {outcome['convergence_round']}"
                if outcome["converged"]
                else f"did not converge in {outcome['rounds_executed']} rounds"
            )
            print(f"  seed {item.seed}: {status}; output {outcome['output']!r} "
                  f"(expected {outcome['expected_output']!r})")
            for probe_name, payload in (outcome.get("probes") or {}).items():
                print(f"    probe {probe_name}: {json.dumps(payload)}")
        print(batch.summary_table())
        for seed, explanation in specification_reports:
            print(f"  seed {seed} specification: {explanation}")

    ok = all(
        item.error is None and item.result["converged"] and item.result["correct"]
        for item in batch
    )
    return 0 if ok else 1


def _cmd_list(args: argparse.Namespace) -> int:
    registries = available()
    kinds = (args.kind,) if args.kind else _LIST_KINDS
    for kind in kinds:
        print(f"{kind}: " + ", ".join(registries[kind]))
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from .simulation.checkpoint import RunCheckpoint

    try:
        checkpoint = RunCheckpoint.load(args.checkpoint)
    except OSError as error:
        raise SystemExit(f"cannot read checkpoint {args.checkpoint}: {error}")
    except SpecificationError as error:
        raise SystemExit(f"invalid checkpoint {args.checkpoint}: {error}")
    if checkpoint.spec is None:
        raise SystemExit(
            f"checkpoint {args.checkpoint} embeds no experiment spec; only "
            "checkpoints written by spec-driven runs (repro run "
            "--checkpoint-every) can be resumed from the command line"
        )
    try:
        spec = ExperimentSpec.from_dict(checkpoint.spec)
        result = spec.resume(checkpoint)
    except SpecificationError as error:
        raise SystemExit(str(error))

    if args.json:
        print(result.to_json(indent=2))
    else:
        print(f"experiment:  {spec.label} (seed {checkpoint.seed}, resumed "
              f"from round {checkpoint.driver.rounds_executed})")
        status = (
            f"converged at round {result.convergence_round}"
            if result.converged
            else f"did not converge in {result.rounds_executed} rounds"
        )
        print(f"  {status}; output {result.output!r} "
              f"(expected {result.expected_output!r})")
        for probe_name, payload in (result.probes or {}).items():
            print(f"    probe {probe_name}: {json.dumps(payload)}")
    return 0 if result.converged and result.correct else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    if len(args.params) != len(args.value_lists):
        raise SystemExit("each --param needs a matching --values list")
    grid = {
        param: [_parse_sweep_value(part) for part in values.split(",") if part.strip()]
        for param, values in zip(args.params, args.value_lists)
    }
    try:
        batch = _runner(args.workers).run_grid(spec, grid)
    except SpecificationError as error:
        raise SystemExit(str(error))
    if args.json:
        print(batch.to_json())
    else:
        print(batch.summary_table())
    for item in batch.failures():
        print(f"FAILED {item.label} seed {item.seed}:\n{item.error}", file=sys.stderr)
    return 0 if not batch.failures() else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import ExperimentService

    service = ExperimentService(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        checkpoint_every=args.checkpoint_every,
        retries=args.retries,
        verbose=args.verbose,
    )
    try:
        service.start()
    except (SpecificationError, OSError) as error:
        raise SystemExit(f"cannot start service: {error}")
    print(f"repro service listening on {service.url} (data: {args.data_dir})",
          flush=True)

    shutdown = threading.Event()

    def request_stop(signum, frame):  # pragma: no cover - signal path
        shutdown.set()

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)
    shutdown.wait()
    print("repro service draining (checkpointing in-flight run)...", flush=True)
    service.stop(drain=True)
    print("repro service stopped", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    spec = _load_spec(args.spec)
    grid = None
    if args.params or args.value_lists:
        if len(args.params or ()) != len(args.value_lists or ()):
            raise SystemExit("each --param needs a matching --values list")
        grid = {
            param: [_parse_sweep_value(part) for part in values.split(",") if part.strip()]
            for param, values in zip(args.params, args.value_lists)
        }
    client = ServiceClient(args.url)
    try:
        job = client.submit(spec, grid=grid, force=args.force)
        if args.events and job["status"] not in ("done", "failed"):
            for event in client.events(job["id"]):
                print(json.dumps(event["data"]), flush=True)
        if args.wait or args.events:
            record = client.wait(job["id"], timeout=args.timeout)
        else:
            record = job
    except ServiceError as error:
        raise SystemExit(str(error))

    if args.json:
        print(json.dumps(record, indent=2))
    elif record is job:
        dedup = " (joined in-flight run)" if job.get("deduplicated") else ""
        cached = " [cache hit: served without executing]" if job.get("cached") else ""
        print(f"run {job['id']}: {job['status']}{dedup}{cached}")
        print(f"  fingerprint {job['fingerprint']}")
        print(f"  follow: repro status {job['id']} --url {args.url}")
    else:
        print(f"run {record['id']}: {record['status']}"
              + (" [cache hit]" if record.get("cached") else ""))
        for unit in record.get("results") or []:
            outcome = unit["result"]
            status = (
                f"converged at round {outcome['convergence_round']}"
                if outcome["converged"]
                else f"did not converge in {outcome['rounds_executed']} rounds"
            )
            print(f"  {unit['label']} seed {unit['seed']}: {status}; "
                  f"output {outcome['output']!r} (expected {outcome['expected_output']!r})")
        if record.get("error"):
            print(record["error"], file=sys.stderr)

    if record is job and record["status"] not in ("done", "failed"):
        return 0
    if record["status"] != "done":
        return 1
    results = record.get("results") or []
    ok = all(
        unit["error"] is None
        and unit["result"]["converged"]
        and unit["result"]["correct"]
        for unit in results
    )
    return 0 if ok or not results else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import run_explain, run_lint

    if args.explain is not None:
        return run_explain(args.explain)
    return run_lint(
        args.paths,
        output_format=args.output_format,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
        prune_baseline=args.prune,
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import FAULT_KINDS, FaultPlan, run_chaos

    spec = _load_spec(args.spec)
    try:
        if args.plan is not None:
            plan = FaultPlan.load(args.plan)
        else:
            kinds = FAULT_KINDS
            if args.kinds:
                kinds = tuple(
                    part.strip() for part in args.kinds.split(",") if part.strip()
                )
            plan = FaultPlan.generate(args.fault_seed, kinds=kinds)
    except (OSError, SpecificationError) as error:
        raise SystemExit(f"cannot build fault plan: {error}")
    if args.plan_out is not None:
        args.plan_out.parent.mkdir(parents=True, exist_ok=True)
        args.plan_out.write_text(plan.to_json() + "\n")

    directory = args.dir if args.dir is not None else pathlib.Path(
        f"chaos-{plan.seed}"
    )
    try:
        report = run_chaos(
            spec,
            plan,
            directory,
            mode=args.mode,
            checkpoint_every=args.checkpoint_every,
        )
    except SpecificationError as error:
        raise SystemExit(str(error))

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"chaos: {spec.label} under fault plan seed {plan.seed} "
              f"({len(plan.entries)} faults)")
        for mode_name, mode_report in report["modes"].items():
            verdict = "byte-identical" if mode_report["match"] else "DIVERGED"
            print(f"  {mode_name}: {verdict} "
                  f"({mode_report['units']} units, "
                  f"{len(mode_report['corrupted'])} corruptions, "
                  f"{len(mode_report['quarantined'])} quarantined)")
            for failure in mode_report.get("first_attempt_failures", []):
                summary = (failure["error"] or "").strip().splitlines()
                print(f"    crash: {failure['label']} seed {failure['seed']}: "
                      f"{summary[-1] if summary else 'failed'}")
        print("replay: repro chaos "
              f"{args.spec} --fault-seed {plan.seed} --mode {args.mode}")
    return 0 if report["match"] else 1


def _cmd_status(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.run_id is None:
            health = client.health()
            runs = client.runs()
            if args.json:
                print(json.dumps({"health": health, "runs": runs}, indent=2))
            else:
                jobs = ", ".join(f"{k}={v}" for k, v in sorted(health["jobs"].items()))
                cache = health["cache"]
                print(f"service {args.url}: {health['status']}"
                      + (" (draining)" if health["draining"] else ""))
                print(f"  jobs: {jobs or '(none)'}")
                print(f"  cache: {cache['entries']} entries, "
                      f"{cache['hits']} hits, {cache['misses']} misses, "
                      f"{cache.get('corrupt', 0)} corrupt")
                for job in runs:
                    print(f"  {job['id']}: {job['status']}"
                          + (" [cached]" if job["cached"] else ""))
            return 0
        record = client.status(args.run_id)
    except ServiceError as error:
        raise SystemExit(str(error))
    if args.json:
        print(json.dumps(record, indent=2))
    else:
        print(f"run {record['id']}: {record['status']}"
              + (" [cached]" if record.get("cached") else ""))
        print(f"  fingerprint {record['fingerprint']}")
        if record.get("error"):
            print(f"  error:\n{record['error']}")
        for unit in record.get("results") or []:
            outcome = unit["result"]
            print(f"  {unit['label']} seed {unit['seed']}: "
                  f"converged={outcome['converged']} output={outcome['output']!r}")
    return 0 if record["status"] != "failed" else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    if argv is None:
        argv = sys.argv[1:]
    try:
        load_plugins()
    except SpecificationError as error:
        raise SystemExit(str(error))
    if argv and argv[0] in SUBCOMMANDS:
        args = build_spec_parser().parse_args(argv)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "resume":
            return _cmd_resume(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        return _cmd_sweep(args)
    return _legacy_main(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
