"""Command-line interface: run one self-similar computation from a shell.

The CLI exists so that the library can be exercised without writing a
script — handy for quick demonstrations and for embedding the simulator in
shell-driven experiment pipelines::

    python -m repro --list
    python -m repro minimum  --agents 10 --churn 0.3 --seed 7
    python -m repro sum      --values 3,5,3,7
    python -m repro sorting  --values 9,2,7,1 --environment line
    python -m repro hull     --agents 8 --environment mobility --verbose

Input values default to a seeded random instance of the requested size;
pass ``--values`` for explicit inputs.  The exit status is 0 when the run
converged to the correct answer and 1 otherwise, so the CLI can be used in
smoke-test scripts.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Sequence

from . import (
    Simulator,
    average_algorithm,
    convex_hull_algorithm,
    kth_smallest_algorithm,
    maximum_algorithm,
    minimum_algorithm,
    second_smallest_algorithm,
    sorting_algorithm,
    summation_algorithm,
)
from .environment import (
    BlackoutAdversary,
    RandomChurnEnvironment,
    RandomWaypointEnvironment,
    RotatingPartitionAdversary,
    StaticEnvironment,
    complete_graph,
    line_graph,
)
from .verification import check_specification

__all__ = ["main", "build_parser", "ALGORITHMS", "ENVIRONMENTS"]

#: Algorithms the CLI can run, keyed by the name used on the command line.
ALGORITHMS = (
    "minimum",
    "maximum",
    "sum",
    "average",
    "second-smallest",
    "kth-smallest",
    "sorting",
    "hull",
)

#: Environment presets, keyed by the name used on the command line.
ENVIRONMENTS = ("static", "churn", "line", "partition", "blackout", "mobility")


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run a self-similar algorithm in a simulated dynamic distributed system.",
    )
    parser.add_argument("algorithm", nargs="?", choices=ALGORITHMS, help="computation to run")
    parser.add_argument("--list", action="store_true", help="list algorithms and environments")
    parser.add_argument("--agents", type=int, default=8, help="number of agents (default 8)")
    parser.add_argument(
        "--values",
        type=str,
        default=None,
        help="comma-separated input values (default: seeded random instance)",
    )
    parser.add_argument(
        "--environment",
        choices=ENVIRONMENTS,
        default="churn",
        help="environment preset (default: churn)",
    )
    parser.add_argument(
        "--churn", type=float, default=0.3, help="edge up-probability for the churn preset"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--max-rounds", type=int, default=2000, help="round cap")
    parser.add_argument("--k", type=int, default=3, help="k for kth-smallest")
    parser.add_argument(
        "--verbose", action="store_true", help="also print the trace-level specification check"
    )
    return parser


def _parse_values(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip() != ""]
    except ValueError as error:
        raise SystemExit(f"--values must be a comma-separated list of integers: {error}")


def _default_values(num_agents: int, seed: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.randint(0, 99) for _ in range(num_agents)]


def _make_environment(name: str, num_agents: int, churn: float, seed: int):
    if name == "static":
        return StaticEnvironment(complete_graph(num_agents))
    if name == "churn":
        return RandomChurnEnvironment(complete_graph(num_agents), edge_up_probability=churn)
    if name == "line":
        return RandomChurnEnvironment(line_graph(num_agents), edge_up_probability=churn)
    if name == "partition":
        return RotatingPartitionAdversary(
            complete_graph(num_agents), num_blocks=2, rotate_every=3, seed=seed
        )
    if name == "blackout":
        return BlackoutAdversary(complete_graph(num_agents), period=10, blackout_rounds=6)
    if name == "mobility":
        return RandomWaypointEnvironment(
            num_agents, arena_size=100.0, range_radius=35.0, speed=8.0, seed=seed
        )
    raise SystemExit(f"unknown environment {name!r}")


def _make_algorithm(name: str, values: Sequence[int], k: int, seed: int):
    """Return (algorithm, simulator_inputs) for the requested computation."""
    if name == "minimum":
        return minimum_algorithm(), list(values)
    if name == "maximum":
        return maximum_algorithm(upper_bound=max(values)), list(values)
    if name == "sum":
        return summation_algorithm(), list(values)
    if name == "average":
        return average_algorithm(), list(values)
    if name == "second-smallest":
        return second_smallest_algorithm(), list(values)
    if name == "kth-smallest":
        return kth_smallest_algorithm(k), list(values)
    if name == "sorting":
        distinct = list(dict.fromkeys(values))
        algorithm = sorting_algorithm(distinct)
        return algorithm, algorithm.instance_cells
    if name == "hull":
        rng = random.Random(seed)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in values]
        return convex_hull_algorithm(points), points
    raise SystemExit(f"unknown algorithm {name!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or args.algorithm is None:
        print("algorithms:   " + ", ".join(ALGORITHMS))
        print("environments: " + ", ".join(ENVIRONMENTS))
        return 0

    values = _parse_values(args.values) if args.values else _default_values(args.agents, args.seed)
    if args.values:
        args.agents = len(values)
    if args.agents < 1:
        raise SystemExit("--agents must be at least 1")

    algorithm, inputs = _make_algorithm(args.algorithm, values, args.k, args.seed)
    if len(inputs) != args.agents:
        args.agents = len(inputs)
    environment = _make_environment(args.environment, args.agents, args.churn, args.seed)

    simulator = Simulator(algorithm, environment, inputs, seed=args.seed)
    result = simulator.run(max_rounds=args.max_rounds)

    print(f"algorithm:    {algorithm.name}")
    print(f"environment:  {environment.describe()}")
    print(f"inputs:       {list(values)}")
    print(f"converged:    {result.converged} "
          f"(round {result.convergence_round}, {result.group_steps} group steps)")
    print(f"output:       {result.output}")
    print(f"expected:     {result.expected_output}")
    if args.verbose:
        report = check_specification(algorithm, result.trace)
        print(f"specification: {report.explain()}")

    return 0 if result.converged and result.correct else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
