"""The unified simulation surface: the ``Engine`` protocol and the probe pipeline.

The paper specifies its self-similar algorithms by temporal-logic
properties over *computations* — streams of states — and this module gives
the library the matching execution shape.  Every execution backend (the
synchronous group-step :class:`~repro.simulation.engine.Simulator`, the
asynchronous :class:`~repro.simulation.messaging.MergeMessagePassingSimulator`)
implements one :class:`Engine` protocol: a lazy, resumable
:meth:`Engine.steps` generator yielding one :class:`RoundRecord` per round,
plus a handful of snapshot hooks.  One shared driver, :func:`run_engine`,
carries the single stopping policy (``max_rounds``,
``stop_at_convergence``, ``extra_rounds_after_convergence``, ``on_round``)
for every engine, so execution backends differ only in *how a round runs*,
never in how runs stop or what a :class:`SimulationResult` contains.

Observation is not wired into the engines at all.  It is a pipeline of
:class:`Probe` objects — ``on_start(engine)``, ``on_round(record)``,
``on_finish() -> payload`` — attached per run.  The driver owns exactly one
:class:`HistoryProbe` (supplied or implicit), whose ``history`` mode
decides what a run *retains*:

``"full"``
    every round's multiset and objective value (the default; preserves the
    classic, byte-identical :class:`SimulationResult` with its full trace);
``"objective"``
    the objective trajectory only — the trace keeps just the final state
    (what ``record_trace=False`` always meant);
``"none"``
    O(1) memory: no per-round multisets, no trajectory list — only the
    endpoints of the objective and the run counters survive.

Any other probe streams alongside: online temporal-logic checking, running
statistics, JSONL export — all without the engine materialising state it
does not need.  A 10M-round run with ``history="none"`` holds one
maintained multiset, not 10M of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterator,
    Protocol,
    Sequence,
    runtime_checkable,
)

from ..agents.group import Group
from ..core.errors import SpecificationError
from ..core.multiset import Multiset
from ..core.relation import StepJudgement, StepKind
from ..temporal.trace import Trace
from .checkpoint import (
    DriverState,
    EngineCheckpoint,
    RunCheckpoint,
    decode_state,
    encode_state,
)
from .result import SimulationResult

__all__ = [
    "HISTORY_MODES",
    "RoundRecord",
    "Engine",
    "Probe",
    "HistoryProbe",
    "RunContext",
    "run_engine",
]

#: Retention modes of the run driver / :class:`HistoryProbe`.
HISTORY_MODES = ("full", "objective", "none")


@dataclass(frozen=True)
class RoundRecord:
    """What one simulated round did — the unit of the streaming API.

    Attributes
    ----------
    round_index:
        The round that was executed (0-based, matches the index the
        environment's :meth:`advance` received).
    multiset:
        The agent-state multiset *after* the round, computed exactly once
        per round and shared with the trace.
    objective:
        Value of the objective ``h`` on that multiset.
    converged:
        True when the multiset equals the target ``S* = f(S(0))``.
    groups:
        The non-empty groups that took a step this round, in execution
        order (for message-passing engines: the ``{receiver, sender}``
        pair of every applied one-sided merge).
    judgements:
        The relation ``D``'s verdict for each group step, aligned with
        ``groups``.
    """

    round_index: int
    multiset: Multiset
    objective: float
    converged: bool
    groups: tuple[Group, ...]
    judgements: tuple[StepJudgement, ...]

    @property
    def group_steps(self) -> int:
        """Number of group steps executed this round."""
        return len(self.judgements)

    @property
    def improving_steps(self) -> int:
        """Group steps that strictly decreased the objective."""
        return sum(1 for j in self.judgements if j.kind is StepKind.IMPROVEMENT)

    @property
    def stutter_steps(self) -> int:
        """Group steps that left their group's state unchanged."""
        return sum(1 for j in self.judgements if j.kind is StepKind.STUTTER)

    @property
    def invalid_steps(self) -> int:
        """Steps that violated ``D`` (possible only with enforcement off)."""
        return len(self.judgements) - self.improving_steps - self.stutter_steps

    @property
    def largest_group(self) -> int:
        """Size of the largest group scheduled this round (0 when none)."""
        return max((len(group) for group in self.groups), default=0)


@runtime_checkable
class Engine(Protocol):
    """What an execution backend must provide to be driven by :func:`run_engine`.

    The protocol is deliberately small: a lazily resumable round stream
    plus the snapshot hooks the driver needs to assemble a
    :class:`SimulationResult`.  Everything about stopping, observing and
    retaining lives in the driver and the probes, so a new backend (an
    event-driven runtime, a remote shard) is a new ``Engine``
    implementation — not a new ``run()`` monolith.
    """

    algorithm: Any
    seed: int

    def steps(self, max_rounds: int | None = None) -> Iterator[RoundRecord]:
        """Stream rounds lazily; abandoning the iterator pauses the engine
        with no loose state, and calling :meth:`steps` again resumes."""
        ...

    def has_converged(self) -> bool:
        """True when the agents currently form the target multiset."""
        ...

    def current_states(self) -> list:
        """The current agent states, indexed by agent id."""
        ...

    @property
    def target(self) -> Multiset:
        """The multiset ``S* = f(S(0))`` the computation must reach."""
        ...

    def initial_snapshot(self) -> tuple[Multiset, float]:
        """The pre-run ``(multiset, objective)`` pair, computed the way the
        engine's bookkeeping mode dictates (maintained snapshot in
        incremental engines, fresh rebuild otherwise)."""
        ...

    def trace_complete(self, converged: bool, stopped_by_callback: bool) -> bool:
        """Whether the observed prefix determines the whole computation
        (the engine knows its own fixpoint semantics)."""
        ...

    def finish_metadata(self) -> dict:
        """Run metadata recorded on the result (read at run end, so
        engine-side counters like delivered messages are final)."""
        ...

    def checkpoint(self) -> EngineCheckpoint:
        """Serialize the engine's mutable run state at the current round
        boundary (agent states, RNG state, maintained objective,
        environment state) as JSON-round-trippable data."""
        ...

    def restore(self, checkpoint: EngineCheckpoint) -> None:
        """Restore a checkpoint into this (identically-constructed)
        engine; the continued run is byte-identical to the uninterrupted
        one."""
        ...


@dataclass
class RunContext:
    """What the driver exposes to probes that observe the *run*, not just
    its records.

    ``progress`` is the driver's live :class:`DriverState` (mutated in
    place as the run advances); ``observers`` is the full probe pipeline
    in driver order.  :meth:`checkpoint` snapshots everything into a
    :class:`RunCheckpoint` — the engine's serialized state, a copy of the
    driver state, and every probe's ``state_dict()`` — which is how
    :class:`~repro.simulation.probes.CheckpointProbe` writes a resumable
    run without the driver knowing anything about files or cadence.
    """

    engine: Engine
    observers: tuple["Probe", ...]
    progress: DriverState
    policy: dict

    def checkpoint(self) -> RunCheckpoint:
        return RunCheckpoint(
            engine=self.engine.checkpoint(),
            driver=self.progress.copy(),
            probe_states=[
                {"name": probe.name, "state": probe.state_dict()}
                for probe in self.observers
            ],
            policy=dict(self.policy),
        )


class Probe:
    """Base class of the observation pipeline.

    A probe is attached to one run: the driver calls :meth:`on_start` with
    the engine, :meth:`on_initial` with the pre-run snapshot,
    :meth:`on_round` with every :class:`RoundRecord`, :meth:`on_complete`
    once the driver knows whether the observed prefix is a complete
    computation, and finally :meth:`on_finish`, whose non-None return value
    is published under :attr:`name` in ``SimulationResult.probes``.

    All hooks default to no-ops so concrete probes override only what they
    observe.  Probes must not mutate the engine or the records.
    """

    #: Key under which the probe's payload appears in ``result.probes``.
    name = "probe"

    def on_attach(self, context: RunContext) -> None:
        """The driver is about to run; ``context`` stays valid for the
        whole run.  Most probes ignore it — only run-level observers
        (checkpointing) need the engine, the pipeline and the live
        driver state."""

    def on_start(self, engine: Engine) -> None:
        """A run is beginning on ``engine``; reset per-run state here."""

    def on_initial(self, multiset: Multiset, objective: float) -> None:
        """Observe the initial state (the trace position before round 0)."""

    def on_round(self, record: RoundRecord) -> None:
        """Observe one executed round."""

    def on_round_end(self, record: RoundRecord) -> None:
        """Called after *every* observer's :meth:`on_round` for the round.

        This is the checkpoint-safe position: all probe state already
        reflects the round, so a snapshot taken here resumes cleanly.
        The driver skips the second dispatch pass entirely when no
        attached probe overrides this hook."""

    def on_stream_end(self) -> None:
        """The driver's round loop has ended normally; :meth:`on_complete`
        has *not* run yet for any probe.

        This is where a final run snapshot belongs: completion hooks fold
        irreversible effects into probe state (a stats probe counts the
        finished run, a sink emits its closing line), so a checkpoint
        taken any later would replay them on resume.  Only run-level
        observers override this."""

    def state_dict(self) -> dict | None:
        """The probe's resumable state as JSON-safe data (None = stateless).

        Everything a resumed run needs to finish with a byte-identical
        payload must be here; derived caches and live resources (open
        files, engine references) must not."""
        return None

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (no-op for stateless probes)."""

    def on_resume(self, engine: Engine, state: dict | None) -> None:
        """A checkpointed run is resuming on ``engine``.

        The default start-then-load sequence fits probes whose per-run
        state is plain data; probes holding resources (streaming sinks)
        override it to reattach instead of starting fresh."""
        self.on_start(engine)
        if state is not None:
            self.load_state(state)

    def on_complete(self, complete: bool) -> None:
        """Learn whether the observed prefix is a complete computation
        (the final state is a fixpoint that would repeat forever)."""

    def on_finish(self) -> Any:
        """Return the probe's payload (None publishes nothing).

        Always called once :meth:`on_start` has run — also, best-effort,
        when setup or the run itself raises (the payload is then
        discarded), so resource-holding probes release their resources
        here.
        """
        return None


class HistoryProbe(Probe):
    """The retention probe: accumulates what the result keeps per round.

    This is the default (and only driver-internal) probe; its ``history``
    mode is the knob that turns the classic record-everything simulator
    into a bounded-memory streaming engine.  See module docstring for the
    three modes.
    """

    name = "history"

    def __init__(self, history: str = "full"):
        if history not in HISTORY_MODES:
            raise SpecificationError(
                f"history must be one of {HISTORY_MODES}, got {history!r}"
            )
        self.history = history
        self._states: list[Multiset] = []
        self._trajectory: list[float] = []
        self._initial_objective: float | None = None
        self._final_objective: float | None = None
        self._rounds = 0

    def on_start(self, engine: Engine) -> None:
        self._states = []
        self._trajectory = []
        self._initial_objective = None
        self._final_objective = None
        self._rounds = 0

    def on_initial(self, multiset: Multiset, objective: float) -> None:
        self._initial_objective = objective
        self._final_objective = objective
        if self.history == "full":
            self._states.append(multiset)
        if self.history != "none":
            self._trajectory.append(objective)

    def on_round(self, record: RoundRecord) -> None:
        self._rounds += 1
        self._final_objective = record.objective
        if self.history == "full":
            self._states.append(record.multiset)
        if self.history != "none":
            self._trajectory.append(record.objective)

    def state_dict(self) -> dict:
        # Retention is the probe's whole job, so its checkpoint *is* the
        # retained history: under "full" that means every observed
        # multiset (checkpoint size grows with the trace — exactly the
        # runs the reduced modes exist for).
        return {
            "history": self.history,
            "states": [
                [encode_state(value) for value in multiset]
                for multiset in self._states
            ],
            "trajectory": [encode_state(value) for value in self._trajectory],
            "objective_initial": encode_state(self._initial_objective),
            "objective_final": encode_state(self._final_objective),
            "rounds": self._rounds,
        }

    def load_state(self, state: dict) -> None:
        if state.get("history") != self.history:
            raise SpecificationError(
                f"checkpoint retains history={state.get('history')!r} but "
                f"this run declares history={self.history!r}; resume with "
                "the retention mode the checkpoint was taken under"
            )
        self._states = [
            Multiset(decode_state(value) for value in elements)
            for elements in state["states"]
        ]
        self._trajectory = [decode_state(value) for value in state["trajectory"]]
        self._initial_objective = decode_state(state["objective_initial"])
        self._final_objective = decode_state(state["objective_final"])
        self._rounds = state["rounds"]

    def build_history(
        self, complete: bool, final_multiset: Multiset
    ) -> tuple[Trace[Multiset], list[float]]:
        """Assemble the result's trace and objective trajectory.

        In ``"full"`` mode the trace holds every observed multiset and
        carries the completeness verdict; the reduced modes keep only the
        final state (never marked complete, matching the historic
        ``record_trace=False`` behaviour) and, in ``"none"`` mode, only the
        endpoints of the objective.
        """
        if self.history == "full":
            return Trace(self._states, complete=complete), self._trajectory
        trace: Trace[Multiset] = Trace([final_multiset])
        if self.history == "objective":
            return trace, self._trajectory
        trajectory = (
            [self._initial_objective] if self._initial_objective is not None else []
        )
        if self._rounds and self._final_objective is not None:
            trajectory.append(self._final_objective)
        return trace, trajectory

    def on_finish(self) -> dict:
        return {
            "history": self.history,
            "rounds_observed": self._rounds,
            "objective_initial": self._initial_objective,
            "objective_final": self._final_objective,
        }


def run_engine(
    engine: Engine,
    max_rounds: int = 1000,
    stop_at_convergence: bool = True,
    extra_rounds_after_convergence: int = 0,
    on_round: Callable[[RoundRecord], bool | None] | None = None,
    probes: Sequence[Probe] | None = None,
    history: str = "full",
    resume_from: RunCheckpoint | None = None,
) -> SimulationResult:
    """Drive any :class:`Engine` to a :class:`SimulationResult`.

    This is the single ``run()`` implementation behind every simulator: it
    pulls round records from :meth:`Engine.steps`, applies the stopping
    policy, feeds the probe pipeline, and assembles the result from the
    history probe plus the engine's final snapshot.

    Parameters
    ----------
    max_rounds:
        Upper bound on the number of rounds simulated.
    stop_at_convergence:
        When True (default), the run stops as soon as the agents reach the
        target multiset ``S*`` (plus ``extra_rounds_after_convergence``
        additional rounds, useful to confirm stability of the goal state).
    extra_rounds_after_convergence:
        Rounds to keep simulating after convergence when
        ``stop_at_convergence`` is set.
    on_round:
        Optional streaming callback invoked with every record; returning
        True stops the run early (an application-defined stop policy).
    probes:
        Observation pipeline for this run.  A supplied :class:`HistoryProbe`
        takes over retention; otherwise the driver creates one in
        ``history`` mode.
    history:
        Retention mode of the implicit history probe (ignored when the
        caller supplies a :class:`HistoryProbe`).
    resume_from:
        A :class:`RunCheckpoint` to continue from instead of starting a
        fresh run.  The engine must already hold the checkpointed state
        (``Engine.restore``; the engines' ``run()`` wrappers do this) and
        the probe pipeline must match the one the checkpoint was taken
        under — alignment is verified by probe name.  ``max_rounds`` and
        the rest of the stopping policy count from the *original* run
        start, so a resumed run executes exactly the rounds the
        interrupted one still had left.
    """
    probe_list = list(probes or ())
    history_probe = next(
        (probe for probe in probe_list if isinstance(probe, HistoryProbe)), None
    )
    if history_probe is None:
        history_probe = HistoryProbe(history)
    observers = [history_probe] + [p for p in probe_list if p is not history_probe]
    # The post-round pass exists only for run-level observers
    # (checkpointing); with none attached the per-round cost is one
    # truth test on an empty list.
    post_round = [
        probe
        for probe in observers
        if type(probe).on_round_end is not Probe.on_round_end
    ]
    stream_end = [
        probe
        for probe in observers
        if type(probe).on_stream_end is not Probe.on_stream_end
    ]

    records = None
    started: list[Probe] = []
    try:
        progress = DriverState()
        context = RunContext(
            engine=engine,
            observers=tuple(observers),
            progress=progress,
            policy={
                "max_rounds": max_rounds,
                "stop_at_convergence": stop_at_convergence,
                "extra_rounds_after_convergence": extra_rounds_after_convergence,
                "history": history_probe.history,
            },
        )
        for probe in observers:
            probe.on_attach(context)

        if resume_from is None:
            for probe in observers:
                probe.on_start(engine)
                started.append(probe)

            initial_multiset, initial_objective = engine.initial_snapshot()
            for probe in observers:
                probe.on_initial(initial_multiset, initial_objective)
            if initial_multiset == engine.target:
                progress.convergence_round = 0
        else:
            # A checkpoint is only byte-identically resumable under the
            # stopping policy it was taken under; a silent mismatch would
            # finish the run with different semantics than it started
            # with.  (The history mode is validated by the history probe's
            # load_state; checkpoints from older formats carry no policy
            # and skip the check.)
            saved_policy = resume_from.policy
            if saved_policy:
                for key, value in context.policy.items():
                    if key in saved_policy and saved_policy[key] != value:
                        raise SpecificationError(
                            f"checkpoint was taken under {key}="
                            f"{saved_policy[key]!r} but this run declares "
                            f"{key}={value!r}; resume with the stopping "
                            "policy the checkpoint was taken under"
                        )
            saved = resume_from.probe_states
            if len(saved) != len(observers):
                raise SpecificationError(
                    f"checkpoint carries {len(saved)} probe state(s) but "
                    f"this run attaches {len(observers)}; resume with the "
                    "probe pipeline the checkpoint was taken under"
                )
            for probe, entry in zip(observers, saved):
                if entry.get("name") != probe.name:
                    raise SpecificationError(
                        f"checkpoint probe {entry.get('name')!r} does not "
                        f"match attached probe {probe.name!r}; resume with "
                        "the probe pipeline the checkpoint was taken under"
                    )
                probe.on_resume(engine, entry.get("state"))
                started.append(probe)
            saved_driver = resume_from.driver
            progress.rounds_executed = saved_driver.rounds_executed
            progress.group_steps = saved_driver.group_steps
            progress.improving_steps = saved_driver.improving_steps
            progress.stutter_steps = saved_driver.stutter_steps
            progress.invalid_steps = saved_driver.invalid_steps
            progress.largest_group = saved_driver.largest_group
            progress.convergence_round = saved_driver.convergence_round
            progress.stopped_by_callback = saved_driver.stopped_by_callback

        # Engines whose execution style fixes the collaboration width
        # report it as a floor (one-sided merges are pair steps even in
        # merge-free runs).
        progress.largest_group = max(
            progress.largest_group, getattr(engine, "largest_group_floor", 0)
        )
        # Not checkpointed: whenever convergence happened, every round
        # executed since was an after-convergence round.
        if progress.convergence_round is not None and stop_at_convergence:
            rounds_after_convergence = (
                progress.rounds_executed - progress.convergence_round
            )
        else:
            rounds_after_convergence = 0

        records = engine.steps()
        # A callback-stopped run already ended; resuming its final
        # checkpoint must re-assemble the finished result, not execute
        # the rounds the callback declined.
        round_range = (
            range(0)
            if progress.stopped_by_callback
            else range(progress.rounds_executed, max_rounds)
        )
        for round_index in round_range:
            if progress.convergence_round is not None and stop_at_convergence:
                if rounds_after_convergence >= extra_rounds_after_convergence:
                    break
                rounds_after_convergence += 1

            record = next(records)
            progress.rounds_executed += 1
            progress.group_steps += record.group_steps
            progress.improving_steps += record.improving_steps
            progress.stutter_steps += record.stutter_steps
            progress.invalid_steps += record.invalid_steps
            progress.largest_group = max(
                progress.largest_group, record.largest_group
            )

            for probe in observers:
                probe.on_round(record)

            if progress.convergence_round is None and record.converged:
                progress.convergence_round = round_index + 1

            for probe in post_round:
                probe.on_round_end(record)

            if on_round is not None and on_round(record):
                progress.stopped_by_callback = True
                break

        for probe in stream_end:
            probe.on_stream_end()
    except BaseException:
        # A failing setup step or round (a bad probe configuration, an
        # enforcement violation, a callback error) must not leak probe
        # resources: best-effort teardown of every probe whose on_start
        # ran, so sinks flush and close, then let the original error
        # propagate.  on_complete is deliberately skipped — the run has
        # no completeness verdict.
        for probe in started:
            try:
                probe.on_finish()
            except Exception:
                pass
        raise
    finally:
        if records is not None:
            records.close()

    convergence_round = progress.convergence_round
    rounds_executed = progress.rounds_executed
    group_steps = progress.group_steps
    improving_steps = progress.improving_steps
    stutter_steps = progress.stutter_steps
    invalid_steps = progress.invalid_steps
    largest_group = progress.largest_group
    converged = convergence_round is not None
    complete = engine.trace_complete(converged, progress.stopped_by_callback)
    final_states = engine.current_states()
    final_multiset = Multiset(final_states)
    trace, objective_trajectory = history_probe.build_history(complete, final_multiset)

    payloads: dict[str, Any] = {}
    finished: list[Probe] = []
    try:
        for probe in observers:
            probe.on_complete(complete)
        for probe in probe_list:
            payload = probe.on_finish()
            finished.append(probe)
            if payload is None:
                continue
            key = probe.name
            suffix = 2
            while key in payloads:
                key = f"{probe.name}#{suffix}"
                suffix += 1
            payloads[key] = payload
        if history_probe not in probe_list:
            history_probe.on_finish()
            finished.append(history_probe)
    except BaseException:
        # One probe failing its completion must not leak the resources of
        # the probes after it: finish the rest best-effort, then let the
        # original error propagate.
        for probe in observers:
            if probe not in finished:
                try:
                    probe.on_finish()
                except Exception:
                    pass
        raise

    return SimulationResult(
        converged=converged,
        convergence_round=convergence_round,
        rounds_executed=rounds_executed,
        final_states=final_states,
        output=engine.algorithm.result(final_multiset),
        expected_output=engine.algorithm.result(engine.target),
        trace=trace,
        objective_trajectory=objective_trajectory,
        group_steps=group_steps,
        improving_steps=improving_steps,
        stutter_steps=stutter_steps,
        invalid_steps=invalid_steps,
        largest_group=largest_group,
        probes=payloads,
        metadata=engine.finish_metadata(),
    )
