"""The unified simulation surface: the ``Engine`` protocol and the probe pipeline.

The paper specifies its self-similar algorithms by temporal-logic
properties over *computations* — streams of states — and this module gives
the library the matching execution shape.  Every execution backend (the
synchronous group-step :class:`~repro.simulation.engine.Simulator`, the
asynchronous :class:`~repro.simulation.messaging.MergeMessagePassingSimulator`)
implements one :class:`Engine` protocol: a lazy, resumable
:meth:`Engine.steps` generator yielding one :class:`RoundRecord` per round,
plus a handful of snapshot hooks.  One shared driver, :func:`run_engine`,
carries the single stopping policy (``max_rounds``,
``stop_at_convergence``, ``extra_rounds_after_convergence``, ``on_round``)
for every engine, so execution backends differ only in *how a round runs*,
never in how runs stop or what a :class:`SimulationResult` contains.

Observation is not wired into the engines at all.  It is a pipeline of
:class:`Probe` objects — ``on_start(engine)``, ``on_round(record)``,
``on_finish() -> payload`` — attached per run.  The driver owns exactly one
:class:`HistoryProbe` (supplied or implicit), whose ``history`` mode
decides what a run *retains*:

``"full"``
    every round's multiset and objective value (the default; preserves the
    classic, byte-identical :class:`SimulationResult` with its full trace);
``"objective"``
    the objective trajectory only — the trace keeps just the final state
    (what ``record_trace=False`` always meant);
``"none"``
    O(1) memory: no per-round multisets, no trajectory list — only the
    endpoints of the objective and the run counters survive.

Any other probe streams alongside: online temporal-logic checking, running
statistics, JSONL export — all without the engine materialising state it
does not need.  A 10M-round run with ``history="none"`` holds one
maintained multiset, not 10M of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterator,
    Protocol,
    Sequence,
    runtime_checkable,
)

from ..agents.group import Group
from ..core.errors import SpecificationError
from ..core.multiset import Multiset
from ..core.relation import StepJudgement, StepKind
from ..temporal.trace import Trace
from .result import SimulationResult

__all__ = [
    "HISTORY_MODES",
    "RoundRecord",
    "Engine",
    "Probe",
    "HistoryProbe",
    "run_engine",
]

#: Retention modes of the run driver / :class:`HistoryProbe`.
HISTORY_MODES = ("full", "objective", "none")


@dataclass(frozen=True)
class RoundRecord:
    """What one simulated round did — the unit of the streaming API.

    Attributes
    ----------
    round_index:
        The round that was executed (0-based, matches the index the
        environment's :meth:`advance` received).
    multiset:
        The agent-state multiset *after* the round, computed exactly once
        per round and shared with the trace.
    objective:
        Value of the objective ``h`` on that multiset.
    converged:
        True when the multiset equals the target ``S* = f(S(0))``.
    groups:
        The non-empty groups that took a step this round, in execution
        order (for message-passing engines: the ``{receiver, sender}``
        pair of every applied one-sided merge).
    judgements:
        The relation ``D``'s verdict for each group step, aligned with
        ``groups``.
    """

    round_index: int
    multiset: Multiset
    objective: float
    converged: bool
    groups: tuple[Group, ...]
    judgements: tuple[StepJudgement, ...]

    @property
    def group_steps(self) -> int:
        """Number of group steps executed this round."""
        return len(self.judgements)

    @property
    def improving_steps(self) -> int:
        """Group steps that strictly decreased the objective."""
        return sum(1 for j in self.judgements if j.kind is StepKind.IMPROVEMENT)

    @property
    def stutter_steps(self) -> int:
        """Group steps that left their group's state unchanged."""
        return sum(1 for j in self.judgements if j.kind is StepKind.STUTTER)

    @property
    def invalid_steps(self) -> int:
        """Steps that violated ``D`` (possible only with enforcement off)."""
        return len(self.judgements) - self.improving_steps - self.stutter_steps

    @property
    def largest_group(self) -> int:
        """Size of the largest group scheduled this round (0 when none)."""
        return max((len(group) for group in self.groups), default=0)


@runtime_checkable
class Engine(Protocol):
    """What an execution backend must provide to be driven by :func:`run_engine`.

    The protocol is deliberately small: a lazily resumable round stream
    plus the snapshot hooks the driver needs to assemble a
    :class:`SimulationResult`.  Everything about stopping, observing and
    retaining lives in the driver and the probes, so a new backend (an
    event-driven runtime, a remote shard) is a new ``Engine``
    implementation — not a new ``run()`` monolith.
    """

    algorithm: Any
    seed: int

    def steps(self, max_rounds: int | None = None) -> Iterator[RoundRecord]:
        """Stream rounds lazily; abandoning the iterator pauses the engine
        with no loose state, and calling :meth:`steps` again resumes."""
        ...

    def has_converged(self) -> bool:
        """True when the agents currently form the target multiset."""
        ...

    def current_states(self) -> list:
        """The current agent states, indexed by agent id."""
        ...

    @property
    def target(self) -> Multiset:
        """The multiset ``S* = f(S(0))`` the computation must reach."""
        ...

    def initial_snapshot(self) -> tuple[Multiset, float]:
        """The pre-run ``(multiset, objective)`` pair, computed the way the
        engine's bookkeeping mode dictates (maintained snapshot in
        incremental engines, fresh rebuild otherwise)."""
        ...

    def trace_complete(self, converged: bool, stopped_by_callback: bool) -> bool:
        """Whether the observed prefix determines the whole computation
        (the engine knows its own fixpoint semantics)."""
        ...

    def finish_metadata(self) -> dict:
        """Run metadata recorded on the result (read at run end, so
        engine-side counters like delivered messages are final)."""
        ...


class Probe:
    """Base class of the observation pipeline.

    A probe is attached to one run: the driver calls :meth:`on_start` with
    the engine, :meth:`on_initial` with the pre-run snapshot,
    :meth:`on_round` with every :class:`RoundRecord`, :meth:`on_complete`
    once the driver knows whether the observed prefix is a complete
    computation, and finally :meth:`on_finish`, whose non-None return value
    is published under :attr:`name` in ``SimulationResult.probes``.

    All hooks default to no-ops so concrete probes override only what they
    observe.  Probes must not mutate the engine or the records.
    """

    #: Key under which the probe's payload appears in ``result.probes``.
    name = "probe"

    def on_start(self, engine: Engine) -> None:
        """A run is beginning on ``engine``; reset per-run state here."""

    def on_initial(self, multiset: Multiset, objective: float) -> None:
        """Observe the initial state (the trace position before round 0)."""

    def on_round(self, record: RoundRecord) -> None:
        """Observe one executed round."""

    def on_complete(self, complete: bool) -> None:
        """Learn whether the observed prefix is a complete computation
        (the final state is a fixpoint that would repeat forever)."""

    def on_finish(self) -> Any:
        """Return the probe's payload (None publishes nothing).

        Always called once :meth:`on_start` has run — also, best-effort,
        when setup or the run itself raises (the payload is then
        discarded), so resource-holding probes release their resources
        here.
        """
        return None


class HistoryProbe(Probe):
    """The retention probe: accumulates what the result keeps per round.

    This is the default (and only driver-internal) probe; its ``history``
    mode is the knob that turns the classic record-everything simulator
    into a bounded-memory streaming engine.  See module docstring for the
    three modes.
    """

    name = "history"

    def __init__(self, history: str = "full"):
        if history not in HISTORY_MODES:
            raise SpecificationError(
                f"history must be one of {HISTORY_MODES}, got {history!r}"
            )
        self.history = history
        self._states: list[Multiset] = []
        self._trajectory: list[float] = []
        self._initial_objective: float | None = None
        self._final_objective: float | None = None
        self._rounds = 0

    def on_start(self, engine: Engine) -> None:
        self._states = []
        self._trajectory = []
        self._initial_objective = None
        self._final_objective = None
        self._rounds = 0

    def on_initial(self, multiset: Multiset, objective: float) -> None:
        self._initial_objective = objective
        self._final_objective = objective
        if self.history == "full":
            self._states.append(multiset)
        if self.history != "none":
            self._trajectory.append(objective)

    def on_round(self, record: RoundRecord) -> None:
        self._rounds += 1
        self._final_objective = record.objective
        if self.history == "full":
            self._states.append(record.multiset)
        if self.history != "none":
            self._trajectory.append(record.objective)

    def build_history(
        self, complete: bool, final_multiset: Multiset
    ) -> tuple[Trace[Multiset], list[float]]:
        """Assemble the result's trace and objective trajectory.

        In ``"full"`` mode the trace holds every observed multiset and
        carries the completeness verdict; the reduced modes keep only the
        final state (never marked complete, matching the historic
        ``record_trace=False`` behaviour) and, in ``"none"`` mode, only the
        endpoints of the objective.
        """
        if self.history == "full":
            return Trace(self._states, complete=complete), self._trajectory
        trace: Trace[Multiset] = Trace([final_multiset])
        if self.history == "objective":
            return trace, self._trajectory
        trajectory = (
            [self._initial_objective] if self._initial_objective is not None else []
        )
        if self._rounds and self._final_objective is not None:
            trajectory.append(self._final_objective)
        return trace, trajectory

    def on_finish(self) -> dict:
        return {
            "history": self.history,
            "rounds_observed": self._rounds,
            "objective_initial": self._initial_objective,
            "objective_final": self._final_objective,
        }


def run_engine(
    engine: Engine,
    max_rounds: int = 1000,
    stop_at_convergence: bool = True,
    extra_rounds_after_convergence: int = 0,
    on_round: Callable[[RoundRecord], bool | None] | None = None,
    probes: Sequence[Probe] | None = None,
    history: str = "full",
) -> SimulationResult:
    """Drive any :class:`Engine` to a :class:`SimulationResult`.

    This is the single ``run()`` implementation behind every simulator: it
    pulls round records from :meth:`Engine.steps`, applies the stopping
    policy, feeds the probe pipeline, and assembles the result from the
    history probe plus the engine's final snapshot.

    Parameters
    ----------
    max_rounds:
        Upper bound on the number of rounds simulated.
    stop_at_convergence:
        When True (default), the run stops as soon as the agents reach the
        target multiset ``S*`` (plus ``extra_rounds_after_convergence``
        additional rounds, useful to confirm stability of the goal state).
    extra_rounds_after_convergence:
        Rounds to keep simulating after convergence when
        ``stop_at_convergence`` is set.
    on_round:
        Optional streaming callback invoked with every record; returning
        True stops the run early (an application-defined stop policy).
    probes:
        Observation pipeline for this run.  A supplied :class:`HistoryProbe`
        takes over retention; otherwise the driver creates one in
        ``history`` mode.
    history:
        Retention mode of the implicit history probe (ignored when the
        caller supplies a :class:`HistoryProbe`).
    """
    probe_list = list(probes or ())
    history_probe = next(
        (probe for probe in probe_list if isinstance(probe, HistoryProbe)), None
    )
    if history_probe is None:
        history_probe = HistoryProbe(history)
    observers = [history_probe] + [p for p in probe_list if p is not history_probe]

    records = None
    started: list[Probe] = []
    try:
        for probe in observers:
            probe.on_start(engine)
            started.append(probe)

        initial_multiset, initial_objective = engine.initial_snapshot()
        for probe in observers:
            probe.on_initial(initial_multiset, initial_objective)

        group_steps = 0
        improving_steps = 0
        stutter_steps = 0
        invalid_steps = 0
        # Engines whose execution style fixes the collaboration width
        # report it as a floor (one-sided merges are pair steps even in
        # merge-free runs).
        largest_group = getattr(engine, "largest_group_floor", 0)
        convergence_round: int | None = (
            0 if initial_multiset == engine.target else None
        )
        rounds_after_convergence = 0
        rounds_executed = 0
        stopped_by_callback = False

        records = engine.steps()
        for round_index in range(max_rounds):
            if convergence_round is not None and stop_at_convergence:
                if rounds_after_convergence >= extra_rounds_after_convergence:
                    break
                rounds_after_convergence += 1

            record = next(records)
            rounds_executed += 1
            group_steps += record.group_steps
            improving_steps += record.improving_steps
            stutter_steps += record.stutter_steps
            invalid_steps += record.invalid_steps
            largest_group = max(largest_group, record.largest_group)

            for probe in observers:
                probe.on_round(record)

            if convergence_round is None and record.converged:
                convergence_round = round_index + 1

            if on_round is not None and on_round(record):
                stopped_by_callback = True
                break
    except BaseException:
        # A failing setup step or round (a bad probe configuration, an
        # enforcement violation, a callback error) must not leak probe
        # resources: best-effort teardown of every probe whose on_start
        # ran, so sinks flush and close, then let the original error
        # propagate.  on_complete is deliberately skipped — the run has
        # no completeness verdict.
        for probe in started:
            try:
                probe.on_finish()
            except Exception:
                pass
        raise
    finally:
        if records is not None:
            records.close()

    converged = convergence_round is not None
    complete = engine.trace_complete(converged, stopped_by_callback)
    final_states = engine.current_states()
    final_multiset = Multiset(final_states)
    trace, objective_trajectory = history_probe.build_history(complete, final_multiset)

    payloads: dict[str, Any] = {}
    finished: list[Probe] = []
    try:
        for probe in observers:
            probe.on_complete(complete)
        for probe in probe_list:
            payload = probe.on_finish()
            finished.append(probe)
            if payload is None:
                continue
            key = probe.name
            suffix = 2
            while key in payloads:
                key = f"{probe.name}#{suffix}"
                suffix += 1
            payloads[key] = payload
        if history_probe not in probe_list:
            history_probe.on_finish()
            finished.append(history_probe)
    except BaseException:
        # One probe failing its completion must not leak the resources of
        # the probes after it: finish the rest best-effort, then let the
        # original error propagate.
        for probe in observers:
            if probe not in finished:
                try:
                    probe.on_finish()
                except Exception:
                    pass
        raise

    return SimulationResult(
        converged=converged,
        convergence_round=convergence_round,
        rounds_executed=rounds_executed,
        final_states=final_states,
        output=engine.algorithm.result(final_multiset),
        expected_output=engine.algorithm.result(engine.target),
        trace=trace,
        objective_trajectory=objective_trajectory,
        group_steps=group_steps,
        improving_steps=improving_steps,
        stutter_steps=stutter_steps,
        invalid_steps=invalid_steps,
        largest_group=largest_group,
        probes=payloads,
        metadata=engine.finish_metadata(),
    )
