"""The built-in probe library: streaming observability as plugins.

Every probe here implements the :class:`~repro.simulation.protocol.Probe`
pipeline and is registered under a spec-addressable name (the ``probes``
field of an :class:`~repro.experiment.ExperimentSpec`, the ``--probe``
flag of the CLI), so new instrumentation attaches to *any* engine — the
synchronous group-step simulator or the asynchronous message-passing
runtime — without touching engine code:

``"history"``
    the retention probe (:class:`~repro.simulation.protocol.HistoryProbe`);
``"objective"``
    online summary (and optionally the full series) of the objective ``h``;
``"convergence"``
    when the run reached ``S*`` and how long it stayed;
``"temporal"``
    online temporal-logic checking: the paper's ``□`` / ``◇`` / ``stable``
    specifications evaluated *during* the run, in O(1) memory per formula,
    with verdicts matching after-the-fact evaluation on a recorded trace
    bit for bit;
``"stats"``
    running :class:`~repro.simulation.metrics.RunStatistics` accumulation
    across every run the probe observes;
``"jsonl"``
    a streaming JSON-lines sink, one line per round, for dashboards and
    offline analysis of runs too long to materialise.

Probes are constructed fresh per run by the experiment layer, cross
process boundaries as registry names plus JSON parameters, and publish
their payloads under ``SimulationResult.probes`` (which
:class:`~repro.simulation.batch.BatchRunner` ships back and merges).
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.errors import SpecificationError
from ..core.multiset import Multiset
from ..registry import register_probe
from ..temporal.online import OnlineFormula, OPERATORS, online
from .checkpoint import (
    RunCheckpoint,
    decode_state,
    encode_state,
    stamp_path,
    write_checkpoint_text,
)
from .protocol import Engine, HistoryProbe, Probe, RoundRecord, RunContext
from .result import jsonify

__all__ = [
    "HistoryProbe",
    "ObjectiveProbe",
    "ConvergenceProbe",
    "TemporalProperty",
    "TemporalProbe",
    "StatsProbe",
    "JSONLSink",
    "CheckpointProbe",
    "stream_start_payload",
    "stream_initial_payload",
    "stream_round_payload",
    "stream_finish_payload",
]


# -- the streaming line protocol -------------------------------------------------
#
# One payload per observed event, shared by every byte-stream sink: the
# JSONL file sink below and the experiment service's
# :class:`~repro.service.streams.ServiceSinkProbe` emit these very
# dictionaries, which is what makes an SSE stream of a run equal the JSONL
# file of the same run line for line.


def stream_start_payload(engine: Engine) -> dict:
    """The stream's opening line: which run this is."""
    return {
        "event": "start",
        "algorithm": engine.algorithm.name,
        "seed": engine.seed,
    }


def stream_initial_payload(
    multiset: Multiset, objective: float, include_states: bool = False
) -> dict:
    """The pre-run snapshot (trace position before round 0)."""
    payload = {"event": "initial", "objective": jsonify(objective)}
    if include_states:
        payload["states"] = jsonify(list(multiset))
    return payload


def stream_round_payload(record: RoundRecord, include_states: bool = False) -> dict:
    """One executed round."""
    payload = {
        "event": "round",
        "round": record.round_index,
        "objective": jsonify(record.objective),
        "converged": record.converged,
        "group_steps": record.group_steps,
        "improving_steps": record.improving_steps,
        "largest_group": record.largest_group,
    }
    if include_states:
        payload["states"] = jsonify(list(record.multiset))
    return payload


def stream_finish_payload(complete: bool) -> dict:
    """The stream's closing line: the driver's completeness verdict."""
    return {"event": "finish", "complete": complete}


register_probe("history")(HistoryProbe)


@register_probe("objective")
class ObjectiveProbe(Probe):
    """Online summary of the objective ``h`` over the round stream.

    Keeps O(1) state (endpoints, extrema, improvement count) and — only
    when ``keep_trajectory`` is set — the full series, so the objective
    trajectory stays available even under ``history="none"`` retention.
    """

    name = "objective"

    def __init__(self, keep_trajectory: bool = False):
        self.keep_trajectory = keep_trajectory
        self._trajectory: list[float] = []
        self._initial: float | None = None
        self._last: float | None = None
        self._minimum: float | None = None
        self._maximum: float | None = None
        self._decreases = 0
        self._rounds = 0

    def on_start(self, engine: Engine) -> None:
        self.__init__(keep_trajectory=self.keep_trajectory)

    def _observe(self, objective: float) -> None:
        if self._last is not None and objective < self._last:
            self._decreases += 1
        self._last = objective
        if self._minimum is None or objective < self._minimum:
            self._minimum = objective
        if self._maximum is None or objective > self._maximum:
            self._maximum = objective
        if self.keep_trajectory:
            self._trajectory.append(objective)

    def on_initial(self, multiset: Multiset, objective: float) -> None:
        self._initial = objective
        self._observe(objective)

    def on_round(self, record: RoundRecord) -> None:
        self._rounds += 1
        self._observe(record.objective)

    def on_finish(self) -> dict:
        payload = {
            "initial": jsonify(self._initial),
            "final": jsonify(self._last),
            "minimum": jsonify(self._minimum),
            "maximum": jsonify(self._maximum),
            "decreasing_rounds": self._decreases,
            "rounds": self._rounds,
        }
        if self.keep_trajectory:
            payload["trajectory"] = jsonify(self._trajectory)
        return payload

    def state_dict(self) -> dict:
        return {
            "trajectory": [encode_state(value) for value in self._trajectory],
            "initial": encode_state(self._initial),
            "last": encode_state(self._last),
            "minimum": encode_state(self._minimum),
            "maximum": encode_state(self._maximum),
            "decreases": self._decreases,
            "rounds": self._rounds,
        }

    def load_state(self, state: dict) -> None:
        self._trajectory = [decode_state(value) for value in state["trajectory"]]
        self._initial = decode_state(state["initial"])
        self._last = decode_state(state["last"])
        self._minimum = decode_state(state["minimum"])
        self._maximum = decode_state(state["maximum"])
        self._decreases = state["decreases"]
        self._rounds = state["rounds"]


@register_probe("convergence")
class ConvergenceProbe(Probe):
    """When the run reached the target multiset ``S*`` — and whether it
    stayed there (a streaming view of the paper's *stable* requirement)."""

    name = "convergence"

    def __init__(self):
        self._engine: Engine | None = None
        self._convergence_round: int | None = None
        self._rounds = 0
        self._left_target_after_convergence = False
        self._last_converged = False

    def on_start(self, engine: Engine) -> None:
        self.__init__()
        self._engine = engine

    def on_initial(self, multiset: Multiset, objective: float) -> None:
        # A run may start already converged; the driver reports that as
        # convergence_round=0 and so must this probe.
        if multiset == self._engine.target:
            self._convergence_round = 0
            self._last_converged = True

    def on_round(self, record: RoundRecord) -> None:
        # Count rounds as observed by *this run* rather than reading the
        # engine's absolute record.round_index: a resumed engine's records
        # start mid-stream, and the driver's convergence_round (pinned to
        # the legacy run() semantics) is relative to the run — the probe
        # must agree with it.
        self._rounds += 1
        if record.converged and self._convergence_round is None:
            self._convergence_round = self._rounds
        if self._convergence_round is not None and not record.converged:
            self._left_target_after_convergence = True
        self._last_converged = record.converged

    def on_finish(self) -> dict:
        return {
            "converged": self._convergence_round is not None,
            "convergence_round": self._convergence_round,
            "rounds_observed": self._rounds,
            "stayed_at_target": not self._left_target_after_convergence,
            "at_target_at_end": self._last_converged,
        }

    def state_dict(self) -> dict:
        # The engine reference is a live resource, re-bound by
        # on_start/on_resume; everything else is plain data.
        return {
            "convergence_round": self._convergence_round,
            "rounds": self._rounds,
            "left_target": self._left_target_after_convergence,
            "last_converged": self._last_converged,
        }

    def load_state(self, state: dict) -> None:
        self._convergence_round = state["convergence_round"]
        self._rounds = state["rounds"]
        self._left_target_after_convergence = state["left_target"]
        self._last_converged = state["last_converged"]


# -- temporal-logic probe -------------------------------------------------------


@dataclass(frozen=True)
class TemporalProperty:
    """One named temporal formula to check online over a run.

    ``predicates`` entries are either callables (programmatic use) or
    JSON-safe specs — a registered predicate name (``"at-target"``) or a
    dictionary with parameters (``{"predicate": "objective-below",
    "threshold": 10}``) — resolved against the engine when the run starts.
    """

    name: str
    operator: str
    predicates: tuple = ()


#: Named state predicates resolvable from JSON specs.  Each builder maps
#: ``(engine, **params)`` to a predicate over agent-state multisets.
_PREDICATE_BUILDERS: dict[str, Callable[..., Callable[[Multiset], bool]]] = {}


def _predicate(name: str):
    def decorator(builder):
        _PREDICATE_BUILDERS[name] = builder
        return builder

    return decorator


@_predicate("at-target")
def _at_target(engine: Engine) -> Callable[[Multiset], bool]:
    """The collective state equals the target multiset ``S* = f(S(0))``."""
    target = engine.target
    return lambda bag: bag == target


@_predicate("conserves-f")
def _conserves_f(engine: Engine) -> Callable[[Multiset], bool]:
    """The conservation law: ``f(S)`` still equals ``f(S(0)) = S*``."""
    function = engine.algorithm.function
    target = engine.target
    return lambda bag: function(bag) == target


@_predicate("objective-at-optimum")
def _objective_at_optimum(engine: Engine) -> Callable[[Multiset], bool]:
    """The objective ``h`` has reached its value on the target multiset."""
    objective = engine.algorithm.objective
    optimum = objective(engine.target)
    return lambda bag: objective(bag) == optimum


@_predicate("objective-below")
def _objective_below(engine: Engine, threshold: float) -> Callable[[Multiset], bool]:
    """The objective ``h`` is at or below ``threshold``."""
    objective = engine.algorithm.objective
    return lambda bag: objective(bag) <= threshold


def _resolve_predicate(spec: Any, engine: Engine) -> Callable[[Multiset], bool]:
    if callable(spec):
        return spec
    if isinstance(spec, str):
        name, params = spec, {}
    elif isinstance(spec, Mapping):
        params = dict(spec)
        name = params.pop("predicate", None)
        if not isinstance(name, str):
            raise SpecificationError(
                f"a predicate dictionary needs a 'predicate' name, got {spec!r}"
            )
    else:
        raise SpecificationError(
            f"a predicate must be a callable, a name or a dictionary, got {spec!r}"
        )
    try:
        builder = _PREDICATE_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_PREDICATE_BUILDERS))
        raise SpecificationError(
            f"unknown temporal predicate {name!r}; available: {known}"
        ) from None
    try:
        return builder(engine, **params)
    except TypeError as error:
        raise SpecificationError(
            f"cannot build temporal predicate {name!r} with parameters "
            f"{params!r}: {error}"
        ) from error


def _coerce_property(entry: Any) -> TemporalProperty:
    if isinstance(entry, TemporalProperty):
        return entry
    if isinstance(entry, Mapping):
        data = dict(entry)
        try:
            name = data.pop("name")
            operator = data.pop("operator")
        except KeyError as error:
            raise SpecificationError(
                f"a temporal property needs {error.args[0]!r}: {entry!r}"
            ) from None
        if "predicates" in data:
            predicates = tuple(data.pop("predicates"))
        elif "predicate" in data:
            predicates = (data.pop("predicate"),)
        else:
            predicates = ()
        if data:
            raise SpecificationError(
                f"unknown temporal property fields {sorted(data)} in {entry!r}"
            )
        return TemporalProperty(name=name, operator=operator, predicates=predicates)
    if isinstance(entry, Sequence) and not isinstance(entry, (str, bytes)):
        name, operator, *predicates = entry
        return TemporalProperty(
            name=name, operator=operator, predicates=tuple(predicates)
        )
    raise SpecificationError(f"cannot interpret temporal property {entry!r}")


def _validate_property(prop: TemporalProperty) -> TemporalProperty:
    """Fail fast on a bad operator, arity or predicate name.

    Checked at probe *construction* (spec validation builds probes), so a
    typo in a JSON spec surfaces as one readable SpecificationError before
    a batch fans out — not as a ValueError in every worker at run time.
    """
    operator_cls = OPERATORS.get(prop.operator)
    if operator_cls is None:
        known = ", ".join(sorted(OPERATORS))
        raise SpecificationError(
            f"temporal property {prop.name!r} uses unknown operator "
            f"{prop.operator!r}; available: {known}"
        )
    if len(prop.predicates) != operator_cls.arity:
        raise SpecificationError(
            f"temporal property {prop.name!r}: operator {prop.operator!r} "
            f"takes {operator_cls.arity} predicate(s), got "
            f"{len(prop.predicates)}"
        )
    for spec in prop.predicates:
        if callable(spec):
            continue
        name = spec if isinstance(spec, str) else (
            spec.get("predicate") if isinstance(spec, Mapping) else None
        )
        if not isinstance(name, str):
            raise SpecificationError(
                f"temporal property {prop.name!r}: a predicate must be a "
                f"callable, a name or a dictionary, got {spec!r}"
            )
        if name not in _PREDICATE_BUILDERS:
            known = ", ".join(sorted(_PREDICATE_BUILDERS))
            raise SpecificationError(
                f"temporal property {prop.name!r} uses unknown predicate "
                f"{name!r}; available: {known}"
            )
    return prop


#: The paper's core specification, checked by default: the computation
#: eventually reaches the target, stays there, and conserves ``f`` always.
DEFAULT_PROPERTIES = (
    TemporalProperty("reaches-target", "eventually", ("at-target",)),
    TemporalProperty("target-stable", "stable", ("at-target",)),
    TemporalProperty("conserves-f", "always", ("conserves-f",)),
)


@register_probe("temporal")
class TemporalProbe(Probe):
    """Online temporal-logic checking over the round stream.

    Feeds every observed state (the initial multiset, then each round's)
    through one :class:`~repro.temporal.online.OnlineFormula` per declared
    property, in O(1) memory per formula.  Verdicts use the driver's
    completeness bit, so they match after-the-fact evaluation of
    :mod:`repro.temporal.formulas` on the recorded trace exactly — the
    difference is that no trace needs to exist.
    """

    name = "temporal"

    def __init__(self, properties: Iterable[Any] | None = None):
        self._declared = tuple(
            _validate_property(_coerce_property(entry))
            for entry in (DEFAULT_PROPERTIES if properties is None else properties)
        )
        names = [prop.name for prop in self._declared]
        if len(set(names)) != len(names):
            raise SpecificationError(
                f"temporal property names must be unique, got {names}"
            )
        self._formulas: dict[str, OnlineFormula] = {}
        self._complete = False

    def on_start(self, engine: Engine) -> None:
        self._complete = False
        self._formulas = {
            prop.name: online(
                prop.operator,
                *(_resolve_predicate(spec, engine) for spec in prop.predicates),
            )
            for prop in self._declared
        }

    def on_initial(self, multiset: Multiset, objective: float) -> None:
        for formula in self._formulas.values():
            formula.observe(multiset)

    def on_round(self, record: RoundRecord) -> None:
        for formula in self._formulas.values():
            formula.observe(record.multiset)

    def on_complete(self, complete: bool) -> None:
        self._complete = complete

    def verdicts(self) -> dict[str, bool]:
        """Current truth value of every declared property."""
        return {
            name: formula.verdict(self._complete)
            for name, formula in self._formulas.items()
        }

    def on_finish(self) -> dict:
        return {"complete": self._complete, "verdicts": self.verdicts()}

    def state_dict(self) -> dict:
        # Each online formula's fold state is O(1) plain data; the
        # predicates themselves are re-resolved against the engine on
        # resume (on_start builds fresh formulas, then the fold state is
        # loaded into them).
        return {
            "complete": self._complete,
            "formulas": {
                name: formula.state_dict()
                for name, formula in self._formulas.items()
            },
        }

    def load_state(self, state: dict) -> None:
        self._complete = state["complete"]
        saved = state["formulas"]
        if set(saved) != set(self._formulas):
            raise SpecificationError(
                "checkpointed temporal properties "
                f"{sorted(saved)} do not match the declared ones "
                f"{sorted(self._formulas)}"
            )
        for name, formula_state in saved.items():
            self._formulas[name].load_state(formula_state)


@register_probe("stats")
class StatsProbe(Probe):
    """Running statistics across every run this probe instance observes.

    Unlike the other probes, :meth:`on_start` does *not* reset: attach one
    instance to many runs (or merge payloads from a batch via
    :func:`repro.simulation.metrics.statistics_from_payloads`) and the
    payload accumulates the material :class:`RunStatistics` is built from
    — no :class:`SimulationResult` scraping, no retained traces.
    """

    name = "stats"

    def __init__(self):
        self._engine: Engine | None = None
        self._runs = 0
        self._convergence_rounds: list[int] = []
        self._group_steps = 0
        self._improving_steps = 0
        self._correct_runs = 0
        self._run_convergence_round: int | None = None
        self._run_rounds = 0

    def on_start(self, engine: Engine) -> None:
        self._engine = engine
        self._runs += 1
        self._run_convergence_round = None
        self._run_rounds = 0

    def on_initial(self, multiset: Multiset, objective: float) -> None:
        if multiset == self._engine.target:
            self._run_convergence_round = 0

    def on_round(self, record: RoundRecord) -> None:
        self._run_rounds += 1
        self._group_steps += record.group_steps
        self._improving_steps += record.improving_steps
        if self._run_convergence_round is None and record.converged:
            # Run-relative, like the driver's convergence_round (see
            # ConvergenceProbe.on_round for why round_index is not used).
            self._run_convergence_round = self._run_rounds

    def on_complete(self, complete: bool) -> None:
        if self._run_convergence_round is not None:
            self._convergence_rounds.append(self._run_convergence_round)
        engine = self._engine
        output = engine.algorithm.result(Multiset(engine.current_states()))
        if output == engine.algorithm.result(engine.target):
            self._correct_runs += 1

    def on_finish(self) -> dict:
        return {
            "runs": self._runs,
            "converged_runs": len(self._convergence_rounds),
            "convergence_rounds": list(self._convergence_rounds),
            "group_steps": self._group_steps,
            "improving_steps": self._improving_steps,
            "correct_runs": self._correct_runs,
        }

    def statistics(self):
        """The accumulated runs as a :class:`RunStatistics`."""
        from .metrics import statistics_from_payloads

        return statistics_from_payloads([self.on_finish()])

    def state_dict(self) -> dict:
        # Cross-run accumulators *and* the current run's progress: a
        # resumed run must neither double-count itself nor lose the rounds
        # it already observed.  (The default on_resume calls on_start —
        # which counts a new run — then load_state, which restores the
        # true run count.)
        return {
            "runs": self._runs,
            "convergence_rounds": list(self._convergence_rounds),
            "group_steps": self._group_steps,
            "improving_steps": self._improving_steps,
            "correct_runs": self._correct_runs,
            "run_convergence_round": self._run_convergence_round,
            "run_rounds": self._run_rounds,
        }

    def load_state(self, state: dict) -> None:
        self._runs = state["runs"]
        self._convergence_rounds = list(state["convergence_rounds"])
        self._group_steps = state["group_steps"]
        self._improving_steps = state["improving_steps"]
        self._correct_runs = state["correct_runs"]
        self._run_convergence_round = state["run_convergence_round"]
        self._run_rounds = state["run_rounds"]


@register_probe("jsonl")
class JSONLSink(Probe):
    """Streaming JSON-lines export: one line per observed round.

    The sink writes during the run (no buffering beyond the file object),
    so arbitrarily long ``history="none"`` runs stream to disk in O(1)
    memory.  ``path`` may contain ``{seed}`` and ``{algorithm}``
    placeholders, which keeps per-seed files distinct when a spec fans out
    across :class:`~repro.simulation.batch.BatchRunner` workers.
    """

    name = "jsonl"

    def __init__(self, path: str | pathlib.Path, include_states: bool = False):
        self._path_template = str(path)
        try:
            # Fail at construction (spec-validation time) on a typo'd
            # placeholder, not with a bare KeyError in every batch worker.
            self._path_template.format(seed=0, algorithm="x")
        except (KeyError, IndexError, ValueError) as error:
            raise SpecificationError(
                f"jsonl probe path {self._path_template!r} has an invalid "
                f"placeholder ({error!r}); supported: {{seed}}, {{algorithm}}"
            ) from error
        self.include_states = include_states
        self._file = None
        self._path: pathlib.Path | None = None
        self._lines = 0

    def _emit(self, payload: dict) -> None:
        self._file.write(json.dumps(payload) + "\n")
        self._lines += 1

    def on_start(self, engine: Engine) -> None:
        self._path = pathlib.Path(
            self._path_template.format(
                seed=engine.seed, algorithm=engine.algorithm.name
            )
        )
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self._path.open("w")
        self._lines = 0
        self._emit(stream_start_payload(engine))

    def on_initial(self, multiset: Multiset, objective: float) -> None:
        self._emit(stream_initial_payload(multiset, objective, self.include_states))

    def on_round(self, record: RoundRecord) -> None:
        self._emit(stream_round_payload(record, self.include_states))

    def on_complete(self, complete: bool) -> None:
        self._emit(stream_finish_payload(complete))

    def on_finish(self) -> dict:
        if self._file is not None:
            self._file.close()
            self._file = None
        return {"path": str(self._path), "lines": self._lines}

    def state_dict(self) -> dict:
        # state_dict() is called exactly when a checkpoint captures the
        # run, and the recorded line count is only honest if those lines
        # are durably on disk: after a hard kill (no exception unwind, no
        # close()) anything still in the user-space buffer is lost and
        # the checkpoint would claim more lines than the file holds —
        # making it unresumable.  Flush and fsync before reporting.
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
        return {"lines": self._lines}

    def on_resume(self, engine: Engine, state: dict | None) -> None:
        """Reattach to the sink file, appending from the checkpointed offset.

        The first ``lines`` lines of the existing file are kept and
        anything after them is truncated away — a crashed run may have
        streamed rounds past the checkpoint it is being resumed from, and
        those rounds are about to be re-emitted.  The resumed file is
        byte-identical to an uninterrupted run's.
        """
        if state is None:
            self.on_start(engine)
            return
        self._path = pathlib.Path(
            self._path_template.format(
                seed=engine.seed, algorithm=engine.algorithm.name
            )
        )
        expected = int(state["lines"])
        try:
            with self._path.open("r") as handle:
                kept = [next(handle) for _ in range(expected)]
        except OSError as error:
            raise SpecificationError(
                f"cannot resume jsonl sink {self._path}: {error} (the "
                "partial stream written before the checkpoint is required)"
            ) from error
        except StopIteration:
            raise SpecificationError(
                f"cannot resume jsonl sink {self._path}: the file holds "
                f"fewer than the checkpointed {expected} lines"
            ) from None
        self._file = self._path.open("w")
        self._file.writelines(kept)
        self._lines = expected


@register_probe("checkpoint")
class CheckpointProbe(Probe):
    """Rolling run checkpoints: every ``every`` rounds, the whole run to disk.

    The probe is a run-level observer: :meth:`on_attach` hands it the
    driver's :class:`~repro.simulation.protocol.RunContext`, and each
    write snapshots the engine (``Engine.checkpoint()``), the driver's
    live counters and every sibling probe's ``state_dict()`` into one
    :class:`~repro.simulation.checkpoint.RunCheckpoint` — taken from
    :meth:`on_round_end`, after the full probe pipeline has observed the
    round, so the snapshot is resume-clean.  When the probe was built by
    the experiment layer, the originating spec rides along in the file and
    ``repro resume <path>`` (or
    :func:`~repro.simulation.checkpoint.resume_run`) needs nothing else.

    Files land in ``<directory>/<algorithm>-seed<seed>/`` as
    ``round-<NNNNNNNN>.json`` plus a ``latest.json`` copy (both written
    atomically and durably, each with a ``.sha256`` integrity-stamp
    sidecar), so per-seed runs of a batch never collide and "the most
    recent checkpoint" is always one known filename.  A final checkpoint
    is written when the run completes (``final=False`` disables it), which
    makes every finished run resumable into exactly itself.

    ``generations`` bounds how many rolling ``round-*.json`` files are
    retained (oldest pruned first; 0 keeps everything).  Keeping more
    than one is what makes corruption survivable:
    :func:`~repro.simulation.checkpoint.load_newest_verified` falls back
    through the retained generations when the newest file fails its
    stamp or does not parse.
    """

    name = "checkpoint"

    def __init__(
        self,
        every: int = 100,
        directory: str | pathlib.Path = "checkpoints",
        final: bool = True,
        publish: bool = True,
        generations: int = 0,
    ):
        if int(every) < 1:
            raise SpecificationError(
                f"checkpoint probe needs every >= 1, got {every!r}"
            )
        if int(generations) < 0:
            raise SpecificationError(
                f"checkpoint probe needs generations >= 0, got {generations!r}"
            )
        self.every = int(every)
        self.directory = pathlib.Path(str(directory))
        self.final = bool(final)
        self.publish = bool(publish)
        self.generations = int(generations)
        self._context: RunContext | None = None
        self._spec_data: dict | None = None
        self._run_dir: pathlib.Path | None = None
        self._written = 0
        self._last_round: int | None = None
        self._since = 0

    def attach_spec(self, spec) -> None:
        """Embed the originating experiment spec in every written file
        (called by :meth:`ExperimentSpec.build_probes`)."""
        self._spec_data = spec.to_dict()

    def on_attach(self, context: RunContext) -> None:
        self._context = context

    def on_start(self, engine: Engine) -> None:
        self._run_dir = self.directory / f"{engine.algorithm.name}-seed{engine.seed}"
        self._written = 0
        self._last_round = None
        self._since = 0

    def on_resume(self, engine: Engine, state: dict | None) -> None:
        self.on_start(engine)
        if state is not None:
            self._written = state["written"]
            self._last_round = state["last_round"]
            self._since = state["since"]

    def state_dict(self) -> dict:
        return {
            "written": self._written,
            "last_round": self._last_round,
            "since": self._since,
        }

    def on_round_end(self, record: RoundRecord) -> None:
        self._since += 1
        if self._since >= self.every:
            self._write(self._context.progress.rounds_executed)

    def on_stream_end(self) -> None:
        # The final checkpoint is taken when the round loop ends but
        # before any on_complete hook runs: completion effects (a stats
        # probe counting the run, a sink's closing line) are irreversible,
        # so a snapshot containing them would replay them on resume.
        if self.final and self._context is not None:
            rounds = self._context.progress.rounds_executed
            if self._last_round != rounds:
                self._write(rounds)

    def on_finish(self) -> dict | None:
        # ``publish=False`` keeps the run's result byte-identical to a
        # checkpoint-free run of the same spec (the payload necessarily
        # carries machine-local paths) — the experiment service relies on
        # that for its cache/offline parity guarantee.
        if not self.publish:
            return None
        return {
            "directory": str(self._run_dir),
            "every": self.every,
            "checkpoints_written": self._written,
            "last_checkpoint_round": self._last_round,
        }

    def checkpoint_now(self) -> None:
        """Write a rolling checkpoint at the current round boundary.

        Safe from any observer's ``on_round_end`` (the whole pipeline has
        observed the round there); the experiment service's graceful drain
        uses it to snapshot the in-flight run right before stopping it.
        """
        if self._context is not None and self._run_dir is not None:
            self._write(self._context.progress.rounds_executed)

    # -- internals --------------------------------------------------------------

    def _write(self, rounds_executed: int) -> None:
        # Advance the cadence counters *before* capturing: the snapshot
        # must record the state the uninterrupted run carries forward
        # (counted write, cadence restarted), or a resumed run would
        # immediately re-write and drift the payload.
        self._since = 0
        self._written += 1
        self._last_round = rounds_executed
        checkpoint = self._context.checkpoint()
        if self._spec_data is not None:
            checkpoint.spec = self._spec_data
        self._store(checkpoint, rounds_executed)

    def _store(self, checkpoint: RunCheckpoint, rounds_executed: int) -> None:
        """Persist one checkpoint (tests override this to capture in memory)."""
        # Serialize once, write twice: the latest.json copy is the same
        # bytes, and serialization dominates the write cost.  Each write
        # is durable (fsync before replace) and stamped with the SHA-256
        # of its bytes, so resume can tell silent corruption from a
        # merely-older generation.
        text = checkpoint.to_json()
        self._run_dir.mkdir(parents=True, exist_ok=True)
        for name in (f"round-{rounds_executed:08d}.json", "latest.json"):
            write_checkpoint_text(self._run_dir / name, text)
        self._prune_generations()

    def _prune_generations(self) -> None:
        """Drop rolling round files beyond the retention budget, oldest
        first (``latest.json`` and quarantined files are never touched)."""
        if self.generations < 1:
            return
        rounds = sorted(self._run_dir.glob("round-*.json"))
        for stale in rounds[: -self.generations]:
            for path in (stale, stamp_path(stale)):
                try:
                    path.unlink()
                except OSError:
                    pass
