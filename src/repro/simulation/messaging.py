"""Asynchronous message-passing execution.

The paper notes (for the convex-hull example) that the group step relation
``R`` "can be easily implemented by asynchronous message passing: an agent
``a`` can update ``V_a`` upon receiving a message without requiring that
the sender of the message changes its own estimate of the hull".

This module provides that execution style for *merge-style* algorithms —
algorithms whose group step amounts to every member absorbing information
from the others (minimum, maximum, convex hull, and in general any
``f(X) = ◦X`` consensus built from an idempotent merge).  Each round:

1. the environment produces the available edges;
2. every enabled agent sends its current state over each available
   incident edge (messages may additionally be dropped with a configurable
   probability, modelling lossy radio);
3. every enabled agent folds the received states into its own state with a
   two-state merge function.

A one-sided update of agent ``a`` with the state of agent ``b`` is the
group step of the pair ``{a, b}`` in which only ``a`` changes, so the
resulting computation is a legitimate computation of the paper's model —
it simply never uses groups larger than two and never requires sender and
receiver to move in lock step.

Not every algorithm can be run this way: the sum and sorting examples need
two-sided exchanges (value mass or array slots must move *between* agents
atomically).  The :class:`Simulator` covers those; this runtime exists to
reproduce the asynchronous claim for the algorithms it applies to.

The simulator satisfies the :class:`~repro.simulation.protocol.Engine`
protocol: :meth:`MergeMessagePassingSimulator.steps` streams one
:class:`~repro.simulation.protocol.RoundRecord` per round, lazily and
resumably, and :meth:`MergeMessagePassingSimulator.run` is the shared
engine driver — same stopping policy, same probe pipeline, same
:class:`SimulationResult` shape as the synchronous engine.

Round bookkeeping is incremental: one maintained multiset absorbs each
delivered merge's ``(old, new)`` state delta in O(1), the objective is
updated from the same delta when it supports exact increments, and
convergence is checked against the target via an O(1) content fingerprint
— instead of rebuilding multisets per delivered message and three more per
round.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Hashable, Iterator, Sequence

from ..agents.group import Group
from ..core.errors import SimulationError
from ..core.multiset import Multiset, MutableMultiset
from ..core.algorithm import SelfSimilarAlgorithm
from ..core.relation import StepJudgement, StepKind
from ..environment.base import Environment, EnvironmentState
from .checkpoint import (
    EngineCheckpoint,
    RoundState,
    RunCheckpoint,
    decode_rng_state,
    decode_state,
    encode_rng_state,
    encode_state,
    engine_checkpoint_of,
    rebuilt_multiset,
)
from .protocol import Probe, RoundRecord, run_engine
from .result import SimulationResult

__all__ = ["MergeMessagePassingSimulator"]


#: A two-state merge: returns the state ``receiver`` adopts after absorbing
#: ``received``.  It must conserve ``f`` of the pair and never increase the
#: receiver's objective contribution (idempotent merges like min or hull
#: union satisfy this by construction).
MergeFunction = Callable[[Hashable, Hashable], Hashable]

#: Every applied one-sided merge is an improving pair step; the shared
#: verdict keeps the per-delivery hot path allocation-free.
_MERGE_JUDGEMENT = StepJudgement(kind=StepKind.IMPROVEMENT)


class MergeMessagePassingSimulator:
    """Asynchronous (one-sided) execution of a merge-style algorithm.

    Parameters
    ----------
    algorithm:
        The algorithm being executed; used for initial states, the target
        multiset, objective tracking and output extraction.
    merge:
        The two-state merge applied on message receipt.
    environment:
        Environment model supplying per-round edge availability.
    initial_values:
        Problem inputs, one per agent.
    loss_probability:
        Probability that an individual message is lost in transit.  The
        closed range ``[0, 1]`` is accepted: a loss-1.0 run is a
        legitimate worst-case scenario in which no message is ever
        delivered and the computation simply never converges.
    seed:
        Seed for reproducibility.  When None, an explicit seed is drawn
        once and recorded as :attr:`seed` (and in the result metadata), so
        every run — including "unseeded" ones — is reproducible.
    incremental_environment:
        When True (default) and the environment reports per-round deltas,
        rounds whose delta is empty reuse the previous state's memoized
        effective-edge view instead of re-filtering the edge set.  The
        random stream and all results are identical either way; False
        selects the from-scratch reference mode, mirroring the
        synchronous engine's flag.
    """

    #: One-sided merges are pair steps by construction: the result's
    #: ``largest_group`` reports 2 even in merge-free runs (the historic
    #: convention of this runtime).
    largest_group_floor = 2

    def __init__(
        self,
        algorithm: SelfSimilarAlgorithm,
        merge: MergeFunction,
        environment: Environment,
        initial_values: Sequence[Any],
        loss_probability: float = 0.0,
        seed: int | None = None,
        incremental_environment: bool = True,
    ):
        if len(initial_values) != environment.num_agents:
            raise SimulationError(
                f"{len(initial_values)} initial values supplied for "
                f"{environment.num_agents} agents"
            )
        if not 0.0 <= loss_probability <= 1.0:
            raise SimulationError("loss_probability must be in [0, 1]")
        if seed is None:
            # Draw the effective seed explicitly so the run stays
            # reproducible from its result metadata, matching Simulator.
            seed = random.randrange(2**63)
        self.algorithm = algorithm
        self.merge = merge
        self.environment = environment
        self.loss_probability = loss_probability
        self.seed = seed
        self.incremental_environment = incremental_environment
        self._use_environment_delta = (
            incremental_environment and environment.reports_deltas
        )
        self._previous_environment_state: EnvironmentState | None = None
        self.states: list[Hashable] = algorithm.initial_states(list(initial_values))
        self._initial_states = list(self.states)
        self._target = algorithm.target(self.states)
        self.messages_sent = 0
        self.messages_delivered = 0
        # The mutable run state — RNG, round index, maintained multiset,
        # maintained objective — as one explicit object, shared shape
        # with the synchronous engine; checkpoint()/restore() serialize
        # it.  (The objective stays lazily initialised so that building a
        # simulator never evaluates it.)
        self._state = RoundState(seed, self.states)
        # Incremental objective maintenance requires that every applied
        # merge respected the conservation law; that is only guaranteed
        # when enforcement checks each delivery (Simulator's equivalent is
        # its per-round ``clean`` guard).  With enforcement off, fall back
        # to full recomputation so unchecked, possibly non-conserving
        # merges still report the true objective trajectory.
        self._supports_delta = (
            self.algorithm.objective.supports_delta and self.algorithm.enforce
        )
        # Pairwise-conservation verdicts already proven for a concrete
        # (receiver, message, merged) triple.  Merges over small discrete
        # state spaces (minimum, maximum) repeat the same handful of
        # pairs over and over; memoising the successful checks keeps the
        # inner loop O(1) per repeated delivery.  Failed checks raise
        # immediately and are never cached.  Rich state spaces (hulls)
        # produce mostly-unique triples, so the memo is capped: once
        # full, further checks simply run uncached instead of growing
        # memory without bound.
        self._conservation_ok: set[tuple] = set()
        self._conservation_memo_cap = 4096
        # Groups are value objects keyed by their member tuple, and the
        # same (receiver, sender) pairs deliver round after round on a
        # fixed topology — share one Group per pair instead of allocating
        # per delivery.  Capped like the conservation memo so unbounded
        # topologies cannot grow memory without bound.
        self._pair_groups: dict[tuple[int, int], Group] = {}
        self._pair_group_cap = 65536

    # -- the explicit run state (see RoundState) --------------------------------

    @property
    def _rng(self) -> random.Random:
        return self._state.rng

    @_rng.setter
    def _rng(self, value: random.Random) -> None:
        self._state.rng = value

    @property
    def _round_index(self) -> int:
        return self._state.round_index

    @_round_index.setter
    def _round_index(self, value: int) -> None:
        self._state.round_index = value

    @property
    def _maintained(self) -> MutableMultiset:
        return self._state.maintained

    @property
    def _objective_value(self) -> float | None:
        return self._state.objective_value

    @_objective_value.setter
    def _objective_value(self, value: float | None) -> None:
        self._state.objective_value = value

    # -- the Engine protocol ----------------------------------------------------

    @property
    def target(self) -> Multiset:
        """The multiset ``S* = f(S(0))`` the agents must reach and keep."""
        return self._target

    @property
    def round_index(self) -> int:
        """Index of the next round :meth:`steps` will execute."""
        return self._round_index

    def current_states(self) -> list:
        """Return the current agent states, indexed by agent id."""
        return list(self.states)

    def has_converged(self) -> bool:
        """True when the agents' states form the target multiset ``S*``.

        Deliberately rebuilt from the public ``states`` list (like
        :meth:`Simulator.has_converged`) rather than answered from the
        maintained round state, so the query stays truthful even if a
        caller mutated ``states`` directly between rounds.  Per-round
        convergence checks inside :meth:`steps` use the O(1) fingerprint
        instead.
        """
        return Multiset(self.states) == self._target

    def initial_snapshot(self) -> tuple[Multiset, float]:
        """The pre-run ``(multiset, objective)`` pair (Engine protocol)."""
        snapshot = self._maintained.snapshot()
        if self._objective_value is None:
            self._objective_value = self.algorithm.objective(snapshot)
        return snapshot, self._objective_value

    def trace_complete(self, converged: bool, stopped_by_callback: bool) -> bool:
        """An idempotent merge at ``S*`` can only stutter, so a converged,
        uninterrupted run's prefix determines the whole computation."""
        return converged and not stopped_by_callback

    def finish_metadata(self) -> dict:
        """Run metadata recorded on the result (Engine protocol)."""
        return {
            "algorithm": self.algorithm.name,
            "environment": self.environment.describe(),
            "scheduler": "asynchronous message passing (one-sided merges)",
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "seed": self.seed,
        }

    # -- lifecycle: reset, checkpoint, restore ----------------------------------

    def reset(self) -> None:
        """Restore the initial configuration (same seed, same initial values)."""
        self.states = list(self._initial_states)
        self._state.reset(self.seed, self.states)
        self.environment.reset()
        self.messages_sent = 0
        self.messages_delivered = 0
        self._previous_environment_state = None

    def checkpoint(self) -> EngineCheckpoint:
        """Serialize the run state at the current round boundary.

        Mirrors :meth:`Simulator.checkpoint`; the messaging runtime
        additionally records its send/delivery totals (result metadata).
        The conservation and pair-group memos are pure caches and refill
        on demand after restore.
        """
        state = self._state
        return EngineCheckpoint(
            engine="messaging",
            seed=self.seed,
            round_index=state.round_index,
            rng_state=encode_rng_state(state.rng.getstate()),
            agent_states=[encode_state(value) for value in self.states],
            objective_value=encode_state(state.objective_value),
            environment=self.environment.state_dict(),
            counters={
                "messages_sent": self.messages_sent,
                "messages_delivered": self.messages_delivered,
            },
        )

    def restore(self, checkpoint: EngineCheckpoint | RunCheckpoint | dict) -> None:
        """Restore a checkpoint into this (identically-constructed) engine;
        the continued run is byte-identical to the uninterrupted one."""
        if isinstance(checkpoint, RunCheckpoint):
            checkpoint = checkpoint.engine
        checkpoint = engine_checkpoint_of(checkpoint)
        if checkpoint.engine != "messaging":
            raise SimulationError(
                f"cannot restore a {checkpoint.engine!r} checkpoint into "
                "the message-passing simulator"
            )
        if checkpoint.seed != self.seed:
            raise SimulationError(
                f"checkpoint was taken under seed {checkpoint.seed}, but "
                f"this simulator runs seed {self.seed}; restore requires an "
                "identically-constructed engine"
            )
        if len(checkpoint.agent_states) != len(self.states):
            raise SimulationError(
                f"checkpoint holds {len(checkpoint.agent_states)} agent "
                f"states for {len(self.states)} agents"
            )
        state = self._state
        state.rng.setstate(decode_rng_state(checkpoint.rng_state))
        state.round_index = checkpoint.round_index
        self.states = [decode_state(value) for value in checkpoint.agent_states]
        self.environment.load_state(checkpoint.environment)
        state.maintained = rebuilt_multiset(self.states)
        state.objective_value = decode_state(checkpoint.objective_value)
        self.messages_sent = checkpoint.counters.get("messages_sent", 0)
        self.messages_delivered = checkpoint.counters.get("messages_delivered", 0)
        self._previous_environment_state = None

    # -- execution --------------------------------------------------------------

    def _advance_environment(self, round_index: int) -> EnvironmentState:
        """One environment transition, with view reuse across quiet rounds.

        When the environment reports an empty delta, the new state is
        semantically identical to the previous one, so the previous
        state's memoized effective-edge view is adopted instead of being
        re-filtered — the per-round send loop then starts from the exact
        same frozenset object (identical iteration order, identical
        random stream).
        """
        if not self._use_environment_delta:
            return self.environment.advance(round_index, self._rng)
        environment_state, delta = self.environment.advance_with_delta(
            round_index, self._rng
        )
        if delta is not None and delta.is_empty:
            previous = self._previous_environment_state
            if previous is not None:
                environment_state._adopt_view_memos(previous)
        self._previous_environment_state = environment_state
        return environment_state

    def _execute_round(self, round_index: int) -> RoundRecord:
        """Execute one round — sends, losses, one-sided merge deliveries —
        and record what happened.

        Bookkeeping is O(|delta|): each applied merge folds its
        ``(old, new)`` pair into the maintained multiset, the objective is
        updated from the same delta when exact increments are available,
        and convergence is a fingerprint comparison.
        """
        if self._objective_value is None:
            self._objective_value = self.algorithm.objective(
                self._maintained.snapshot()
            )
        environment_state = self._advance_environment(round_index)
        states = self.states
        enforce = self.algorithm.enforce
        conserves = self.algorithm.function.conserves
        conservation_ok = self._conservation_ok
        pair_groups = self._pair_groups

        # Collect messages first (all sends see the same snapshot), then
        # deliver: the classic synchronous-round abstraction of an
        # asynchronous message-passing system.
        inboxes: dict[int, list[tuple[int, Hashable]]] = {
            agent: [] for agent in range(self.environment.num_agents)
        }
        for a, b in environment_state.effective_edges():
            for sender, receiver in ((a, b), (b, a)):
                self.messages_sent += 1
                if self._rng.random() < self.loss_probability:
                    continue
                self.messages_delivered += 1
                inboxes[receiver].append((sender, states[sender]))

        groups: list[Group] = []
        judgements: list[StepJudgement] = []
        removed: list[Hashable] = []
        added: list[Hashable] = []
        try:
            for agent, received in inboxes.items():
                if agent not in environment_state.enabled_agents or not received:
                    continue
                for sender, message in received:
                    old_state = states[agent]
                    merged = self.merge(old_state, message)
                    if merged == old_state:
                        continue
                    # One-sided pair step: receiver changes, sender does not.
                    if enforce:
                        triple = (old_state, message, merged)
                        if triple not in conservation_ok:
                            before = Multiset([old_state, message])
                            after = Multiset([merged, message])
                            if not conserves(before, after):
                                raise SimulationError(
                                    f"merge for {self.algorithm.name!r} broke "
                                    f"the pairwise conservation law"
                                )
                            if len(conservation_ok) < self._conservation_memo_cap:
                                conservation_ok.add(triple)
                    states[agent] = merged
                    removed.append(old_state)
                    added.append(merged)
                    pair = (agent, sender) if agent < sender else (sender, agent)
                    group = pair_groups.get(pair)
                    if group is None:
                        group = Group(pair)
                        if len(pair_groups) < self._pair_group_cap:
                            pair_groups[pair] = group
                    groups.append(group)
                    judgements.append(_MERGE_JUDGEMENT)
        except BaseException:
            # A mid-round failure (a later delivery breaking conservation,
            # a raising merge) must not desynchronise the persistent round
            # state: earlier deliveries already wrote their merged states.
            # Fold what was applied and drop the cached objective — it
            # describes the pre-round bag and is recomputed lazily if the
            # caller resumes or queries has_converged().
            if removed or added:
                self._maintained.apply_delta(removed, added)
                self._objective_value = None
            raise

        if removed or added:
            self._maintained.apply_delta(removed, added)
        multiset = self._maintained.snapshot()
        if self._supports_delta:
            objective = self.algorithm.objective_delta(
                self._objective_value, multiset, removed, added
            )
        else:
            # Order-sensitive float objectives (hull): recompute on a
            # freshly built multiset so values match the historic,
            # full-recompute behaviour bit for bit.
            objective = self.algorithm.objective(Multiset(states))
        self._objective_value = objective
        return RoundRecord(
            round_index=round_index,
            multiset=multiset,
            objective=objective,
            converged=self._maintained.matches(self._target),
            groups=tuple(groups),
            judgements=tuple(judgements),
        )

    def steps(self, max_rounds: int | None = None) -> Iterator[RoundRecord]:
        """Stream the computation, one :class:`RoundRecord` per round.

        The generator executes rounds lazily: nothing runs until a record
        is pulled, and abandoning the iterator pauses the simulation with
        no loose state — calling :meth:`steps` again resumes from the next
        round.  ``max_rounds`` bounds how many rounds *this* iterator will
        execute; None streams indefinitely (the caller decides when to
        stop, e.g. on :attr:`RoundRecord.converged`).

        A round that *raises* (an enforcement violation, say) was applied
        up to the failing delivery — the maintained round state stays
        consistent with the agent states — but, as with
        :meth:`Simulator.steps`, the aborted attempt's RNG draws and send
        counters are not rolled back: pulling the stream again re-executes
        the same round index as a fresh round from the current RNG state.
        """
        executed = 0
        while max_rounds is None or executed < max_rounds:
            record = self._execute_round(self._round_index)
            self._round_index += 1
            executed += 1
            yield record

    def run(
        self,
        max_rounds: int = 1000,
        stop_at_convergence: bool = True,
        extra_rounds_after_convergence: int = 0,
        on_round: Callable[[RoundRecord], bool | None] | None = None,
        probes: Sequence[Probe] | None = None,
        history: str = "full",
        resume_from: RunCheckpoint | None = None,
    ) -> SimulationResult:
        """Run the asynchronous computation and return a
        :class:`SimulationResult`.

        Delegates to the shared engine driver
        (:func:`repro.simulation.protocol.run_engine`), so this runtime
        carries the same stopping policy (``stop_at_convergence``,
        ``extra_rounds_after_convergence``, ``on_round``), the same
        probe pipeline (``probes``, ``history``) and the same
        checkpoint/resume semantics (``resume_from``) as the synchronous
        :class:`~repro.simulation.engine.Simulator` — see the driver's
        docstring for the parameters.
        """
        if resume_from is not None:
            self.restore(resume_from)
        return run_engine(
            self,
            max_rounds=max_rounds,
            stop_at_convergence=stop_at_convergence,
            extra_rounds_after_convergence=extra_rounds_after_convergence,
            on_round=on_round,
            probes=probes,
            history=history,
            resume_from=resume_from,
        )
