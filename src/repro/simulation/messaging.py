"""Asynchronous message-passing execution.

The paper notes (for the convex-hull example) that the group step relation
``R`` "can be easily implemented by asynchronous message passing: an agent
``a`` can update ``V_a`` upon receiving a message without requiring that
the sender of the message changes its own estimate of the hull".

This module provides that execution style for *merge-style* algorithms —
algorithms whose group step amounts to every member absorbing information
from the others (minimum, maximum, convex hull, and in general any
``f(X) = ◦X`` consensus built from an idempotent merge).  Each round:

1. the environment produces the available edges;
2. every enabled agent sends its current state over each available
   incident edge (messages may additionally be dropped with a configurable
   probability, modelling lossy radio);
3. every enabled agent folds the received states into its own state with a
   two-state merge function.

A one-sided update of agent ``a`` with the state of agent ``b`` is the
group step of the pair ``{a, b}`` in which only ``a`` changes, so the
resulting computation is a legitimate computation of the paper's model —
it simply never uses groups larger than two and never requires sender and
receiver to move in lock step.

Not every algorithm can be run this way: the sum and sorting examples need
two-sided exchanges (value mass or array slots must move *between* agents
atomically).  The :class:`Simulator` covers those; this runtime exists to
reproduce the asynchronous claim for the algorithms it applies to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence

from ..core.errors import SimulationError
from ..core.multiset import Multiset, MutableMultiset
from ..core.algorithm import SelfSimilarAlgorithm
from ..environment.base import Environment
from ..temporal.trace import Trace
from .result import SimulationResult

__all__ = ["MergeMessagePassingSimulator"]


#: A two-state merge: returns the state ``receiver`` adopts after absorbing
#: ``received``.  It must conserve ``f`` of the pair and never increase the
#: receiver's objective contribution (idempotent merges like min or hull
#: union satisfy this by construction).
MergeFunction = Callable[[Hashable, Hashable], Hashable]


class MergeMessagePassingSimulator:
    """Asynchronous (one-sided) execution of a merge-style algorithm.

    Parameters
    ----------
    algorithm:
        The algorithm being executed; used for initial states, the target
        multiset, objective tracking and output extraction.
    merge:
        The two-state merge applied on message receipt.
    environment:
        Environment model supplying per-round edge availability.
    initial_values:
        Problem inputs, one per agent.
    loss_probability:
        Probability that an individual message is lost in transit.  The
        closed range ``[0, 1]`` is accepted: a loss-1.0 run is a
        legitimate worst-case scenario in which no message is ever
        delivered and the computation simply never converges.
    seed:
        Seed for reproducibility.  When None, an explicit seed is drawn
        once and recorded as :attr:`seed` (and in the result metadata), so
        every run — including "unseeded" ones — is reproducible.
    """

    def __init__(
        self,
        algorithm: SelfSimilarAlgorithm,
        merge: MergeFunction,
        environment: Environment,
        initial_values: Sequence[Any],
        loss_probability: float = 0.0,
        seed: int | None = None,
    ):
        if len(initial_values) != environment.num_agents:
            raise SimulationError(
                f"{len(initial_values)} initial values supplied for "
                f"{environment.num_agents} agents"
            )
        if not 0.0 <= loss_probability <= 1.0:
            raise SimulationError("loss_probability must be in [0, 1]")
        if seed is None:
            # Draw the effective seed explicitly so the run stays
            # reproducible from its result metadata, matching Simulator.
            seed = random.randrange(2**63)
        self.algorithm = algorithm
        self.merge = merge
        self.environment = environment
        self.loss_probability = loss_probability
        self.seed = seed
        self._rng = random.Random(seed)
        self.states: list[Hashable] = algorithm.initial_states(list(initial_values))
        self._initial_states = list(self.states)
        self._target = algorithm.target(self.states)
        self.messages_sent = 0
        self.messages_delivered = 0
        # Pairwise-conservation verdicts already proven for a concrete
        # (receiver, message, merged) triple.  Merges over small discrete
        # state spaces (minimum, maximum) repeat the same handful of
        # pairs over and over; memoising the successful checks keeps the
        # inner loop O(1) per repeated delivery.  Failed checks raise
        # immediately and are never cached.  Rich state spaces (hulls)
        # produce mostly-unique triples, so the memo is capped: once
        # full, further checks simply run uncached instead of growing
        # memory without bound.
        self._conservation_ok: set[tuple] = set()
        self._conservation_memo_cap = 4096

    def has_converged(self) -> bool:
        """True when the agents' states form the target multiset ``S*``."""
        return Multiset(self.states) == self._target

    def run(self, max_rounds: int = 1000) -> SimulationResult:
        """Run the asynchronous computation for up to ``max_rounds`` rounds.

        Round bookkeeping is incremental: one maintained multiset absorbs
        each delivered merge's ``(old, new)`` state delta in O(1), the
        objective is updated from the same delta when it supports exact
        increments, and convergence is checked against the target via an
        O(1) content fingerprint — instead of rebuilding multisets per
        delivered message and three more per round.
        """
        current = MutableMultiset(self.states)
        # Incremental objective maintenance requires that every applied
        # merge respected the conservation law; that is only guaranteed
        # when enforcement checks each delivery (Simulator's equivalent is
        # its per-round ``clean`` guard).  With enforcement off, fall back
        # to full recomputation so unchecked, possibly non-conserving
        # merges still report the true objective trajectory.
        supports_delta = (
            self.algorithm.objective.supports_delta and self.algorithm.enforce
        )

        initial_multiset = current.snapshot()
        objective_value = self.algorithm.objective(initial_multiset)
        trace: Trace[Multiset] = Trace([initial_multiset])
        objective_trajectory = [objective_value]
        convergence_round: int | None = (
            0 if current.matches(self._target) else None
        )
        rounds_executed = 0
        improving_steps = 0
        enforce = self.algorithm.enforce
        conserves = self.algorithm.function.conserves
        conservation_ok = self._conservation_ok
        states = self.states

        for round_index in range(max_rounds):
            if convergence_round is not None:
                break
            rounds_executed += 1
            environment_state = self.environment.advance(round_index, self._rng)

            # Collect messages first (all sends see the same snapshot), then
            # deliver: the classic synchronous-round abstraction of an
            # asynchronous message-passing system.
            inboxes: dict[int, list[Hashable]] = {
                agent: [] for agent in range(self.environment.num_agents)
            }
            for a, b in environment_state.effective_edges():
                for sender, receiver in ((a, b), (b, a)):
                    self.messages_sent += 1
                    if self._rng.random() < self.loss_probability:
                        continue
                    self.messages_delivered += 1
                    inboxes[receiver].append(states[sender])

            removed: list[Hashable] = []
            added: list[Hashable] = []
            for agent, received in inboxes.items():
                if agent not in environment_state.enabled_agents or not received:
                    continue
                for message in received:
                    old_state = states[agent]
                    merged = self.merge(old_state, message)
                    if merged == old_state:
                        continue
                    # One-sided pair step: receiver changes, sender does not.
                    if enforce:
                        triple = (old_state, message, merged)
                        if triple not in conservation_ok:
                            before = Multiset([old_state, message])
                            after = Multiset([merged, message])
                            if not conserves(before, after):
                                raise SimulationError(
                                    f"merge for {self.algorithm.name!r} broke the "
                                    f"pairwise conservation law"
                                )
                            if len(conservation_ok) < self._conservation_memo_cap:
                                conservation_ok.add(triple)
                    states[agent] = merged
                    removed.append(old_state)
                    added.append(merged)
                    improving_steps += 1

            if removed or added:
                current.apply_delta(removed, added)
            multiset = current.snapshot()
            trace.append(multiset)
            if supports_delta:
                objective_value = self.algorithm.objective_delta(
                    objective_value, multiset, removed, added
                )
            else:
                # Order-sensitive float objectives (hull): recompute on a
                # freshly built multiset so values match the historic,
                # full-recompute behaviour bit for bit.
                objective_value = self.algorithm.objective(Multiset(states))
            objective_trajectory.append(objective_value)
            if convergence_round is None and current.matches(self._target):
                convergence_round = round_index + 1

        converged = convergence_round is not None
        if converged:
            trace.mark_complete()
        final = Multiset(self.states)
        return SimulationResult(
            converged=converged,
            convergence_round=convergence_round,
            rounds_executed=rounds_executed,
            final_states=list(self.states),
            output=self.algorithm.result(final),
            expected_output=self.algorithm.result(self._target),
            trace=trace,
            objective_trajectory=objective_trajectory,
            group_steps=improving_steps,
            improving_steps=improving_steps,
            stutter_steps=0,
            invalid_steps=0,
            largest_group=2,
            metadata={
                "algorithm": self.algorithm.name,
                "environment": self.environment.describe(),
                "scheduler": "asynchronous message passing (one-sided merges)",
                "messages_sent": self.messages_sent,
                "messages_delivered": self.messages_delivered,
                "seed": self.seed,
            },
        )
