"""Results of simulation runs.

A :class:`SimulationResult` packages everything a test, example or
benchmark needs to know about one run: whether and when the computation
converged, the final agent states, the full trace of agent-state multisets
(for temporal-logic checking), the trajectory of the objective function,
and counters describing how much communication the environment actually
allowed.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Hashable, Mapping, Sequence

from ..core.multiset import Multiset
from ..temporal.trace import Trace

__all__ = ["SimulationResult"]


def jsonify(value: Any) -> Any:
    """Coerce a simulation value (state, output, objective) to JSON-safe data.

    Tuples and sets become lists (sets sorted by repr for determinism),
    exact rationals become ``"p/q"`` strings, dataclass states (points,
    hull states) become field dictionaries.  Anything else unknown falls
    back to ``repr`` so serialization never fails — batch results must
    always be persistable.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, Mapping):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((jsonify(item) for item in value), key=repr)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonify(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return repr(value)


def _restore_state(value: Any) -> Any:
    """Undo the list-for-tuple coercion of :func:`jsonify` on agent states.

    Agent states are hashable, so any list in serialized state data must
    have been a tuple.  Other serialized forms (rational strings,
    dataclass dictionaries) are left as-is — they are hashable or only
    used for content comparisons."""
    if isinstance(value, list):
        return tuple(_restore_state(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _restore_state(item)) for key, item in value.items()))
    return value


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    converged:
        True when the agents reached the target multiset ``S* = f(S(0))``
        within the allotted rounds.
    convergence_round:
        The first round at the end of which the agents were at ``S*``
        (None when the run did not converge).
    rounds_executed:
        Total number of rounds simulated.
    final_states:
        The agent states at the end of the run, indexed by agent id.
    output:
        The algorithm's answer extracted from the final states (e.g. the
        minimum value, the sum, the sorted array, the hull).
    expected_output:
        The answer the algorithm *should* produce, computed directly from
        the initial values via ``f``; equal to ``output`` whenever the run
        converged.
    trace:
        Trace of agent-state multisets, one entry per round boundary
        (including the initial state), for temporal-logic checks.
    objective_trajectory:
        Value of the objective ``h`` at each round boundary.
    group_steps:
        Total number of group steps scheduled.
    improving_steps:
        How many of those steps strictly decreased the objective.
    stutter_steps:
        How many left the group state unchanged (no useful work possible).
    invalid_steps:
        Steps rejected because they broke conservation or failed to
        improve (only possible when enforcement is off).
    largest_group:
        The largest group size ever scheduled (a measure of how much
        collaboration the environment permitted).
    probes:
        Payloads of the observation probes attached to the run, keyed by
        probe name (empty when the run carried no payload-producing
        probes).  See :mod:`repro.simulation.protocol`.
    """

    converged: bool
    convergence_round: int | None
    rounds_executed: int
    final_states: list[Hashable]
    output: Any
    expected_output: Any
    trace: Trace[Multiset]
    objective_trajectory: list[float]
    group_steps: int = 0
    improving_steps: int = 0
    stutter_steps: int = 0
    invalid_steps: int = 0
    largest_group: int = 0
    probes: dict = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    @property
    def final_multiset(self) -> Multiset:
        """The final agent states as a multiset."""
        return Multiset(self.final_states)

    @property
    def correct(self) -> bool:
        """True when the extracted output matches the expected output."""
        return self.output == self.expected_output

    def summary(self) -> str:
        """Return a one-line human-readable summary of the run."""
        status = (
            f"converged at round {self.convergence_round}"
            if self.converged
            else f"did not converge in {self.rounds_executed} rounds"
        )
        return (
            f"{status}; {self.group_steps} group steps "
            f"({self.improving_steps} improving, {self.stutter_steps} stutters, "
            f"{self.invalid_steps} invalid); largest group {self.largest_group}"
        )

    # -- serialization ---------------------------------------------------------

    def to_dict(self, include_trajectory: bool = False) -> dict:
        """A JSON-safe mirror of the result, for persistence and comparison.

        The trace is summarized (length and completeness) rather than
        serialized: traces exist for in-process temporal-logic checking
        and can hold thousands of multisets.  The objective trajectory is
        likewise summarized to its endpoints unless ``include_trajectory``
        asks for the full series.
        """
        data = {
            "converged": self.converged,
            "convergence_round": self.convergence_round,
            "rounds_executed": self.rounds_executed,
            "final_states": jsonify(self.final_states),
            "output": jsonify(self.output),
            "expected_output": jsonify(self.expected_output),
            "correct": self.correct,
            "trace": {"length": len(self.trace), "complete": self.trace.complete},
            "objective_initial": jsonify(
                self.objective_trajectory[0] if self.objective_trajectory else None
            ),
            "objective_final": jsonify(
                self.objective_trajectory[-1] if self.objective_trajectory else None
            ),
            "group_steps": self.group_steps,
            "improving_steps": self.improving_steps,
            "stutter_steps": self.stutter_steps,
            "invalid_steps": self.invalid_steps,
            "largest_group": self.largest_group,
            "metadata": jsonify(dict(self.metadata)),
        }
        if self.probes:
            # Only emitted when probes produced payloads, so serialized
            # results of probe-less runs are unchanged across versions.
            data["probes"] = jsonify(dict(self.probes))
        if include_trajectory:
            data["objective_trajectory"] = jsonify(list(self.objective_trajectory))
        return data

    def to_json(self, indent: int | None = None, include_trajectory: bool = False) -> str:
        """Serialize :meth:`to_dict` to JSON text."""
        return json.dumps(self.to_dict(include_trajectory=include_trajectory),
                          indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        The reconstruction is faithful for everything :meth:`to_dict`
        kept: counters, convergence data, outputs (in their serialized
        form) and final states (tuples restored).  The trace comes back as
        the single final multiset plus the recorded completeness flag —
        per-round multisets are intentionally not persisted.
        """
        final_states = [_restore_state(state) for state in data["final_states"]]
        trace_info = data.get("trace", {})
        trace: Trace[Multiset] = Trace(
            [Multiset(final_states)], complete=bool(trace_info.get("complete", False))
        )
        trajectory = data.get(
            "objective_trajectory",
            [data.get("objective_initial"), data.get("objective_final")],
        )
        return cls(
            converged=data["converged"],
            convergence_round=data["convergence_round"],
            rounds_executed=data["rounds_executed"],
            final_states=final_states,
            output=data["output"],
            expected_output=data["expected_output"],
            trace=trace,
            objective_trajectory=list(trajectory),
            group_steps=data.get("group_steps", 0),
            improving_steps=data.get("improving_steps", 0),
            stutter_steps=data.get("stutter_steps", 0),
            invalid_steps=data.get("invalid_steps", 0),
            largest_group=data.get("largest_group", 0),
            probes=dict(data.get("probes", {})),
            metadata=dict(data.get("metadata", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "SimulationResult":
        """Parse a result from :meth:`to_json` text."""
        return cls.from_dict(json.loads(text))
