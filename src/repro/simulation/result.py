"""Results of simulation runs.

A :class:`SimulationResult` packages everything a test, example or
benchmark needs to know about one run: whether and when the computation
converged, the final agent states, the full trace of agent-state multisets
(for temporal-logic checking), the trajectory of the objective function,
and counters describing how much communication the environment actually
allowed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

from ..core.multiset import Multiset
from ..temporal.trace import Trace

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    converged:
        True when the agents reached the target multiset ``S* = f(S(0))``
        within the allotted rounds.
    convergence_round:
        The first round at the end of which the agents were at ``S*``
        (None when the run did not converge).
    rounds_executed:
        Total number of rounds simulated.
    final_states:
        The agent states at the end of the run, indexed by agent id.
    output:
        The algorithm's answer extracted from the final states (e.g. the
        minimum value, the sum, the sorted array, the hull).
    expected_output:
        The answer the algorithm *should* produce, computed directly from
        the initial values via ``f``; equal to ``output`` whenever the run
        converged.
    trace:
        Trace of agent-state multisets, one entry per round boundary
        (including the initial state), for temporal-logic checks.
    objective_trajectory:
        Value of the objective ``h`` at each round boundary.
    group_steps:
        Total number of group steps scheduled.
    improving_steps:
        How many of those steps strictly decreased the objective.
    stutter_steps:
        How many left the group state unchanged (no useful work possible).
    invalid_steps:
        Steps rejected because they broke conservation or failed to
        improve (only possible when enforcement is off).
    largest_group:
        The largest group size ever scheduled (a measure of how much
        collaboration the environment permitted).
    """

    converged: bool
    convergence_round: int | None
    rounds_executed: int
    final_states: list[Hashable]
    output: Any
    expected_output: Any
    trace: Trace[Multiset]
    objective_trajectory: list[float]
    group_steps: int = 0
    improving_steps: int = 0
    stutter_steps: int = 0
    invalid_steps: int = 0
    largest_group: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def final_multiset(self) -> Multiset:
        """The final agent states as a multiset."""
        return Multiset(self.final_states)

    @property
    def correct(self) -> bool:
        """True when the extracted output matches the expected output."""
        return self.output == self.expected_output

    def summary(self) -> str:
        """Return a one-line human-readable summary of the run."""
        status = (
            f"converged at round {self.convergence_round}"
            if self.converged
            else f"did not converge in {self.rounds_executed} rounds"
        )
        return (
            f"{status}; {self.group_steps} group steps "
            f"({self.improving_steps} improving, {self.stutter_steps} stutters, "
            f"{self.invalid_steps} invalid); largest group {self.largest_group}"
        )
