"""Durable runs: serializable engine checkpoints and byte-identical resume.

The paper's computations are unbounded streams of states; production runs
of them are long.  A 10M-round ``history="none"`` run or a 200-point sweep
that dies at 95% must not lose everything, so this module makes the whole
run state — engine, driver and observation pipeline — an explicit,
serializable value:

* :class:`RoundState` — the engine-side mutable run state (RNG, round
  index, maintained multiset, objective value, shared quiet-round tuples)
  pulled out of generator locals and loose attributes into one object that
  both engines own, checkpoint and restore;
* :class:`EngineCheckpoint` — the serialized form of one engine's state:
  agent states, ``random.Random.getstate()``, the exact maintained
  objective value and the environment's own mutable state
  (:meth:`~repro.environment.base.Environment.state_dict`);
* :class:`DriverState` — the shared run driver's accumulation state
  (:func:`~repro.simulation.protocol.run_engine`'s counters, convergence
  bookkeeping and stop reason), previously locals of the driver loop;
* :class:`RunCheckpoint` — one complete resumable run: engine checkpoint,
  driver state, the ``state_dict()`` of every attached probe, the stopping
  policy and (optionally) the originating
  :class:`~repro.experiment.ExperimentSpec` as plain data.

Checkpoints are JSON-round-trippable like experiment specs.  Agent states
are hashable values built from a small closed vocabulary (numbers, tuples,
frozensets, exact rationals, planar points); :func:`encode_state` maps
them to tagged JSON and :func:`decode_state` maps them back *exactly* —
floats survive via JSON's shortest-repr round trip, rationals as
numerator/denominator pairs — which is what makes the headline guarantee
possible: checkpoint at round ``k`` + restore produces a byte-identical
:class:`~repro.simulation.result.SimulationResult` (trace, objective
trajectory, probe payloads, metadata) to the uninterrupted run, for all
``k``.

What is deliberately *not* serialized: derived caches.  The maintained
multiset is rebuilt from the restored agent states, the connectivity
tracker resynchronizes from the first post-restore environment state (the
deterministic rebuild recipe — maintained components are pinned equal to
the from-scratch walk), and memo caches (fingerprints, interned groups,
conservation triples) refill on demand.  None of it affects results, so
none of it needs to survive.
"""

from __future__ import annotations

import json
import pathlib
import random
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Any, Hashable, Iterable, Mapping

from ..core.durable import atomic_write_text, quarantine, sha256_hex
from ..core.errors import SpecificationError
from ..core.multiset import Multiset, MutableMultiset
from ..geometry.point import Point

__all__ = [
    "CHECKPOINT_FORMAT",
    "CODEC_SCALARS",
    "CODEC_TAGS",
    "STAMP_SUFFIX",
    "codec_types",
    "encode_state",
    "decode_state",
    "encode_rng_state",
    "decode_rng_state",
    "RoundState",
    "EngineCheckpoint",
    "DriverState",
    "RunCheckpoint",
    "resume_run",
    "stamp_path",
    "write_checkpoint_text",
    "verify_checkpoint_file",
    "load_newest_verified",
]

#: Identifies run-checkpoint files (the ``format`` key of the JSON object).
CHECKPOINT_FORMAT = "repro-run-checkpoint"

#: Current checkpoint schema version.
CHECKPOINT_VERSION = 1

#: Suffix of a checkpoint's integrity-stamp sidecar file.
STAMP_SUFFIX = ".sha256"


# -- the state codec ------------------------------------------------------------
#
# jsonify() in result.py is deliberately lossy (sets become sorted lists,
# unknown values become reprs) because serialized results only need to be
# *comparable*.  Checkpoints need the opposite: every agent state must come
# back as the exact same value, so the codec is tagged and closed — an
# unsupported type is an error at checkpoint time, not a silent corruption
# at resume time.

#: Scalar types JSON round-trips exactly without a tag.
CODEC_SCALARS: tuple[type, ...] = (type(None), bool, int, float, str)

#: The tagged-codec dispatch table: JSON tag -> container/exact type.
#: This is the closed vocabulary of checkpointable state shapes; the
#: static analyzer (rule C201 in :mod:`repro.analysis.rules_protocol`)
#: reads it through :func:`codec_types`, so growing the codec
#: automatically widens what the linter accepts.
CODEC_TAGS: dict[str, type] = {
    "t": tuple,
    "s": frozenset,
    "q": Fraction,
    "p": Point,
}


def codec_types() -> tuple[type, ...]:
    """Every type the tagged state codec can round-trip exactly."""
    return CODEC_SCALARS + tuple(CODEC_TAGS.values())


def encode_state(value: Hashable) -> Any:
    """Encode one agent state (or objective value) as tagged JSON data."""
    if value is None or isinstance(value, CODEC_SCALARS):
        return value
    if isinstance(value, tuple):
        return {"t": [encode_state(item) for item in value]}
    if isinstance(value, frozenset):
        return {"s": sorted((encode_state(item) for item in value), key=repr)}
    if isinstance(value, Fraction):
        return {"q": [value.numerator, value.denominator]}
    if isinstance(value, Point):
        return {"p": [value.x, value.y]}
    supported = ", ".join(
        "None" if t is type(None) else t.__name__ for t in codec_types()
    )
    raise SpecificationError(
        f"cannot checkpoint a state of type {type(value).__name__}: {value!r} "
        f"(supported: {supported})"
    )


def decode_state(value: Any) -> Hashable:
    """Decode :func:`encode_state` output back to the exact original value."""
    if isinstance(value, dict):
        if len(value) != 1:
            raise SpecificationError(f"malformed encoded state: {value!r}")
        tag, payload = next(iter(value.items()))
        if tag == "t":
            return tuple(decode_state(item) for item in payload)
        if tag == "s":
            return frozenset(decode_state(item) for item in payload)
        if tag == "q":
            return Fraction(payload[0], payload[1])
        if tag == "p":
            return Point(payload[0], payload[1])
        raise SpecificationError(f"unknown state tag {tag!r} in checkpoint")
    if isinstance(value, list):
        raise SpecificationError(f"malformed encoded state: {value!r}")
    return value


def encode_rng_state(state: tuple) -> list:
    """``random.Random.getstate()`` as JSON data (version, words, gauss)."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def decode_rng_state(data: Iterable) -> tuple:
    """Rebuild the exact ``random.Random.setstate()`` argument."""
    version, internal, gauss_next = data
    return (version, tuple(internal), gauss_next)


# -- the engine-side explicit run state -----------------------------------------


class RoundState:
    """The mutable per-run state of an engine, as one explicit object.

    Both engines used to scatter this across loose attributes and
    generator locals; holding it in one place is what makes
    ``checkpoint()``/``restore()`` total — nothing a run needs to continue
    lives anywhere else.

    Attributes
    ----------
    rng:
        The run's random generator (drives the environment, the scheduler
        and any randomness in group steps / message losses).
    round_index:
        Index of the next round ``steps()`` will execute.
    maintained:
        The incrementally maintained agent-state multiset.
    objective_value:
        The maintained objective ``h`` (None until first priced; exact —
        including its float summation history — so it must be restored,
        not recomputed, for bit-identical trajectories).
    stutter_tuples:
        Shared all-stutter judgement tuples per partition size.  A pure
        cache: content-identical whether carried over or rebuilt, so
        checkpoints do not persist it.
    """

    __slots__ = (
        "rng",
        "round_index",
        "maintained",
        "objective_value",
        "stutter_tuples",
    )

    def __init__(self, seed: int, initial_bag):
        self.rng = random.Random(seed)
        self.round_index = 0
        self.maintained = MutableMultiset(initial_bag)
        self.objective_value = None
        self.stutter_tuples: dict[int, tuple] = {}

    def reset(self, seed: int, initial_bag) -> None:
        """Restore the pre-run condition (the stutter-tuple cache, being
        content-neutral, is kept)."""
        self.rng = random.Random(seed)
        self.round_index = 0
        self.maintained = MutableMultiset(initial_bag)
        self.objective_value = None


# -- serialized state dataclasses -----------------------------------------------


@dataclass
class EngineCheckpoint:
    """Serialized mutable state of one engine at a round boundary.

    ``engine`` names the execution backend (``"simulator"`` /
    ``"messaging"``) so a checkpoint cannot be restored into the wrong
    engine kind; ``counters`` carries backend-specific totals (the
    messaging runtime's sent/delivered counts).
    """

    engine: str
    seed: int
    round_index: int
    rng_state: list
    agent_states: list
    objective_value: Any = None
    agent_counters: list | None = None
    environment: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "seed": self.seed,
            "round_index": self.round_index,
            "rng_state": self.rng_state,
            "agent_states": self.agent_states,
            "objective_value": self.objective_value,
            "agent_counters": self.agent_counters,
            "environment": dict(self.environment),
            "counters": dict(self.counters),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineCheckpoint":
        try:
            return cls(
                engine=data["engine"],
                seed=data["seed"],
                round_index=data["round_index"],
                rng_state=data["rng_state"],
                agent_states=data["agent_states"],
                objective_value=data.get("objective_value"),
                agent_counters=data.get("agent_counters"),
                environment=dict(data.get("environment") or {}),
                counters=dict(data.get("counters") or {}),
            )
        except KeyError as error:
            raise SpecificationError(
                f"engine checkpoint is missing {error.args[0]!r}"
            ) from None


@dataclass
class DriverState:
    """The run driver's accumulation state (one instance per run).

    :func:`~repro.simulation.protocol.run_engine` mutates this in place
    while the run progresses; a checkpoint stores a copy.  The
    rounds-after-convergence counter is not stored — it is exactly
    ``rounds_executed - convergence_round`` whenever convergence happened,
    so resume re-derives it.
    """

    rounds_executed: int = 0
    group_steps: int = 0
    improving_steps: int = 0
    stutter_steps: int = 0
    invalid_steps: int = 0
    largest_group: int = 0
    convergence_round: int | None = None
    stopped_by_callback: bool = False

    def copy(self) -> "DriverState":
        return replace(self)

    def to_dict(self) -> dict:
        return {
            "rounds_executed": self.rounds_executed,
            "group_steps": self.group_steps,
            "improving_steps": self.improving_steps,
            "stutter_steps": self.stutter_steps,
            "invalid_steps": self.invalid_steps,
            "largest_group": self.largest_group,
            "convergence_round": self.convergence_round,
            "stopped_by_callback": self.stopped_by_callback,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DriverState":
        return cls(
            rounds_executed=data.get("rounds_executed", 0),
            group_steps=data.get("group_steps", 0),
            improving_steps=data.get("improving_steps", 0),
            stutter_steps=data.get("stutter_steps", 0),
            invalid_steps=data.get("invalid_steps", 0),
            largest_group=data.get("largest_group", 0),
            convergence_round=data.get("convergence_round"),
            stopped_by_callback=data.get("stopped_by_callback", False),
        )


@dataclass
class RunCheckpoint:
    """One complete resumable run, as plain data.

    ``probe_states`` is aligned with the run's observer pipeline (the
    history probe first, then the declared probes in order); resume
    verifies the alignment by probe name, so a checkpoint can only be
    resumed under the observation pipeline it was taken under.  ``spec``
    carries the originating experiment spec when the run was launched from
    one, which is what lets ``repro resume <path>`` rebuild everything
    from the file alone.
    """

    engine: EngineCheckpoint
    driver: DriverState
    probe_states: list = field(default_factory=list)
    policy: dict = field(default_factory=dict)
    spec: dict | None = None

    @property
    def seed(self) -> int:
        """The run seed (recorded on the engine checkpoint)."""
        return self.engine.seed

    def to_dict(self) -> dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "engine": self.engine.to_dict(),
            "driver": self.driver.to_dict(),
            "probes": list(self.probe_states),
            "policy": dict(self.policy),
            "spec": self.spec,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunCheckpoint":
        if data.get("format") != CHECKPOINT_FORMAT:
            raise SpecificationError(
                f"not a run checkpoint (format {data.get('format')!r}, "
                f"expected {CHECKPOINT_FORMAT!r})"
            )
        if data.get("version") != CHECKPOINT_VERSION:
            raise SpecificationError(
                f"unsupported checkpoint version {data.get('version')!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        if "engine" not in data or "driver" not in data:
            raise SpecificationError(
                "a run checkpoint needs 'engine' and 'driver' sections"
            )
        return cls(
            engine=EngineCheckpoint.from_dict(data["engine"]),
            driver=DriverState.from_dict(data["driver"]),
            probe_states=list(data.get("probes") or ()),
            policy=dict(data.get("policy") or {}),
            spec=data.get("spec"),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunCheckpoint":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecificationError(f"invalid checkpoint JSON: {error}") from error
        if not isinstance(data, dict):
            raise SpecificationError("a run checkpoint must be a JSON object")
        return cls.from_dict(data)

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the checkpoint atomically and durably, with an integrity
        stamp sidecar (see :func:`write_checkpoint_text`)."""
        path = pathlib.Path(path)
        write_checkpoint_text(path, self.to_json())
        return path

    @classmethod
    def load(cls, source: "RunCheckpoint | str | pathlib.Path") -> "RunCheckpoint":
        """Accept an in-memory checkpoint or a path to a checkpoint file."""
        if isinstance(source, RunCheckpoint):
            return source
        return cls.from_json(pathlib.Path(source).read_text())


def resume_run(source: RunCheckpoint | str | pathlib.Path):
    """Resume a run from its checkpoint, using the embedded experiment spec.

    Returns the completed
    :class:`~repro.simulation.result.SimulationResult`, byte-identical to
    what the uninterrupted run would have produced.  Checkpoints taken
    outside the experiment layer carry no spec; resume those through
    :meth:`ExperimentSpec.resume` or ``engine.run(resume_from=...)``
    against an identically-constructed engine.
    """
    checkpoint = RunCheckpoint.load(source)
    if checkpoint.spec is None:
        raise SpecificationError(
            "this checkpoint embeds no experiment spec; rebuild the engine "
            "yourself and call run(resume_from=checkpoint) on it"
        )
    from ..experiment import ExperimentSpec

    return ExperimentSpec.from_dict(checkpoint.spec).resume(checkpoint)


# -- checkpoint integrity: stamps, verification, generation fallback ------------
#
# A checkpoint that parses is not necessarily the checkpoint that was
# written: truncation usually breaks the JSON, but a flipped bit in a
# number does not.  Every checkpoint file therefore gets a ``.sha256``
# sidecar stamping the exact bytes, written through the same durable
# helper; resume verifies stamp + parse and falls back, newest first,
# through the retained generations — quarantining (never deleting) what
# fails, so one bad sector costs one generation of progress, not the run.


def stamp_path(path: str | pathlib.Path) -> pathlib.Path:
    """The integrity-stamp sidecar of a checkpoint file."""
    path = pathlib.Path(path)
    return path.with_name(path.name + STAMP_SUFFIX)


def write_checkpoint_text(path: str | pathlib.Path, text: str) -> pathlib.Path:
    """Persist checkpoint JSON durably plus its ``.sha256`` stamp.

    The stamp is written *after* the data: a crash between the two
    writes leaves a checkpoint without a stamp, which verification
    accepts (stamps harden against silent corruption, not against the
    checkpoint simply being the older generation).
    """
    path = pathlib.Path(path)
    atomic_write_text(path, text)
    atomic_write_text(stamp_path(path), sha256_hex(text) + "\n")
    return path


def verify_checkpoint_file(path: str | pathlib.Path) -> RunCheckpoint:
    """Load one checkpoint file, verifying its integrity stamp if present.

    Raises :class:`SpecificationError` on a stamp mismatch or unparseable
    content (and lets ``OSError`` escape for an unreadable file); callers
    that can fall back catch both.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except UnicodeDecodeError as error:
        raise SpecificationError(
            f"checkpoint {path} is not valid UTF-8: {error}"
        ) from error
    stamp = stamp_path(path)
    if stamp.exists():
        recorded = stamp.read_text().strip()
        if recorded and recorded != sha256_hex(text):
            raise SpecificationError(
                f"integrity stamp mismatch for {path} (the file's bytes "
                "are not the bytes that were written)"
            )
    return RunCheckpoint.from_json(text)


def load_newest_verified(
    directory: str | pathlib.Path, quarantine_corrupt: bool = True
) -> RunCheckpoint | None:
    """The newest checkpoint under a run directory tree that verifies.

    ``directory`` is a :class:`~repro.simulation.probes.CheckpointProbe`
    target (or the batch layer's ``<unit>/engine``): run subdirectories
    holding ``latest.json`` plus rolling ``round-NNNNNNNN.json``
    generations.  Candidates are tried newest first — ``latest.json``,
    then the round files in descending round order; the first one that
    reads, verifies and parses wins.  Anything that fails is quarantined
    (with its stamp, so a stale stamp can never damn a future file of
    the same name) and the search falls back a generation.  Returns None
    when nothing verifies — the caller starts the run over.
    """
    directory = pathlib.Path(directory)
    candidates = sorted(directory.glob("*/latest.json")) + sorted(
        directory.glob("*/round-*.json"), reverse=True
    )
    for path in candidates:
        try:
            return verify_checkpoint_file(path)
        except (OSError, SpecificationError) as error:
            if quarantine_corrupt:
                quarantine(path, f"corrupt checkpoint: {error}")
                stamp = stamp_path(path)
                if stamp.exists():
                    quarantine(stamp, f"stamp of quarantined {path.name}")
    return None


def engine_checkpoint_of(data: Mapping[str, Any] | EngineCheckpoint) -> EngineCheckpoint:
    """Coerce plain data to an :class:`EngineCheckpoint` (idempotent)."""
    if isinstance(data, EngineCheckpoint):
        return data
    return EngineCheckpoint.from_dict(data)


def rebuilt_multiset(states: Iterable[Hashable]) -> MutableMultiset:
    """The maintained bag rebuilt from restored agent states.

    The bag is pure content (counts + fingerprint); rebuilding it from
    the states is byte-equivalent to having maintained it through every
    round, so checkpoints never persist it.
    """
    return MutableMultiset(Multiset(states))
