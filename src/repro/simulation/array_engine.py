"""The struct-of-arrays vectorized engine: 100k–1M agents behind ``Engine``.

The object-per-agent :class:`~repro.simulation.engine.Simulator` prices
every round in Python objects — one :class:`~repro.agents.agent.Agent`
per agent, one :class:`~repro.agents.group.Group` per component, one
:class:`~repro.core.relation.StepJudgement` per step — which caps the
flagship workload at a few hundred rounds/sec at n=10k.  This module is
the scale path: agent state lives in one flat array (a numpy ``int64``
array when numpy is installed and the algorithm's domain is machine
integers, a pure-Python ``array('q')`` or plain list otherwise), whole
rounds of group steps run as a handful of vectorized reductions, and
grouping walks the effective edge set directly without materializing
``Group`` objects.

What makes that safe is the :attr:`~repro.core.algorithm.SelfSimilarAlgorithm.kernel`
contract: an algorithm that declares a kernel promises its step rule is a
deterministic pure function of the ordered state list that draws no
randomness at any group size and changes at least one element *iff* the
step is an improvement.  Every kernel in this library (minimum, maximum,
sum, average, kth-smallest) satisfies it, so the engine can classify
steps (improvement / stutter, never invalid) without running the
relation judge, and — because the run's only random draws are the
environment's and the scheduler's, made identically here and in the
reference engine — every round's state delta, objective value and
convergence verdict is **value-identical** to the reference
``Simulator``'s.  The parity suite pins this across algorithms ×
schedulers × environments, and ``cross_check=True`` re-derives every
vectorized round from the algorithm's own step rule at run time
(the PR 2/4 pattern: fast path opt-in, reference path byte-identical,
divergence loud).

Round bookkeeping reuses the incremental machinery the reference engine
introduced — fold the ``(removed, added)`` delta into a maintained
:class:`~repro.core.multiset.MutableMultiset`, update ``h`` in O(|delta|)
via :meth:`~repro.core.algorithm.SelfSimilarAlgorithm.objective_delta`,
decide convergence by fingerprint — but never takes a per-round snapshot:
round records are :class:`ArrayRoundRecord` objects whose ``multiset`` is
a lazy property, so a ``history="none"`` run materializes no per-agent
objects and no per-round bags at all.  On the numpy backend the last
Python-loop costs disappear too: the stock churn environment's per-round
draws are made vectorized on a state-shared MT19937 (bit-identical to the
run RNG's stream, state written back), communication components are
labelled by vectorized min-label propagation, and the maintained bag is
rebuilt lazily on access while convergence comes from a vectorized
comparison provably equivalent to multiset equality with the target.

Checkpoints serialize through the same tagged codec as the reference
engine (``engine="array"``), so ``repro resume``, the durable batch
runner and the service's drain/restart path work unchanged.
"""

from __future__ import annotations

import random
from array import array
from typing import Any, Callable, Hashable, Iterator, Sequence

try:
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised via the HAVE_NUMPY flag
    _numpy = None

from ..agents.scheduler import MaximalGroupsScheduler, Scheduler
from ..core.algorithm import SelfSimilarAlgorithm
from ..core.errors import SimulationError, SpecificationError
from ..core.multiset import Multiset
from ..core.relation import StepKind
from ..environment.base import (
    Environment,
    EnvironmentState,
    connected_component_tuples,
)
from ..environment.dynamics import RandomChurnEnvironment
from ..registry import register_engine
from .checkpoint import (
    EngineCheckpoint,
    RoundState,
    RunCheckpoint,
    decode_rng_state,
    decode_state,
    encode_rng_state,
    encode_state,
    engine_checkpoint_of,
    rebuilt_multiset,
)
from .engine import Simulator, _validate_partition
from .protocol import Probe, run_engine
from .result import SimulationResult

__all__ = ["ArrayEngine", "ArrayRoundRecord", "HAVE_NUMPY", "INT64_MAX"]

#: Whether numpy is importable.  Module-level so tests can monkeypatch it
#: to False and prove the pure-Python fallback produces identical results.
HAVE_NUMPY = _numpy is not None

#: Largest value a flat ``int64`` slot can hold.
INT64_MAX = 2**63 - 1

#: Kernels whose state domain is machine integers *closed under the step
#: rule* — minimum/maximum never leave the initial value range, and sum
#: keeps every value within ±(sum of absolute initial values) — so the
#: flat int64 representation cannot overflow once the initial values fit.
_INT_KERNELS = frozenset({"minimum", "maximum", "sum"})


class _KernelGuardRng(random.Random):
    """A ``random.Random`` that refuses to be drawn from.

    Kernel algorithms declare their step rules draw no randomness; the
    engine passes this guard instead of the run RNG so a violation raises
    immediately instead of silently desynchronising the random stream
    from the reference engine.  Every stdlib draw method bottoms out in
    ``random()`` or ``getrandbits()``, so overriding both is exhaustive.
    """

    def __init__(self, algorithm_name: str):
        super().__init__(0)
        self._algorithm_name = algorithm_name

    def _refuse(self) -> None:
        raise SimulationError(
            f"algorithm {self._algorithm_name!r} declares a vectorizable "
            "kernel but its group step drew randomness; kernel step rules "
            "must be deterministic (run it with engine=\"reference\")"
        )

    def random(self) -> float:
        self._refuse()

    def getrandbits(self, k: int) -> int:
        self._refuse()


class ArrayRoundRecord:
    """What one vectorized round did — duck-typed to ``RoundRecord``.

    The driver (:func:`~repro.simulation.protocol.run_engine`) reads the
    step counters as plain attributes; unlike the reference engine's
    frozen record there are no per-group ``groups``/``judgements`` tuples
    to derive them from, because the engine never materialized any.

    ``multiset`` is a *lazy* property: it snapshots the engine's
    maintained bag only when read (the history probe reads it under
    ``history="full"``, nothing does under ``"objective"``/``"none"``),
    which is what keeps O(1)-memory runs from paying O(distinct) per
    round.  The record is only current until the engine's bag next
    mutates; reading it later raises instead of returning a stale bag.
    """

    __slots__ = (
        "round_index",
        "objective",
        "converged",
        "group_steps",
        "improving_steps",
        "stutter_steps",
        "invalid_steps",
        "largest_group",
        "_engine",
        "_epoch",
    )

    def __init__(
        self,
        engine: "ArrayEngine",
        round_index: int,
        objective: float,
        converged: bool,
        group_steps: int,
        improving_steps: int,
        largest_group: int,
    ):
        self.round_index = round_index
        self.objective = objective
        self.converged = converged
        self.group_steps = group_steps
        self.improving_steps = improving_steps
        # The kernel contract (change iff improvement) and the guard RNG
        # make invalid steps unreachable: every non-improving step left
        # its group untouched, i.e. stuttered.
        self.stutter_steps = group_steps - improving_steps
        self.invalid_steps = 0
        self.largest_group = largest_group
        self._engine = engine
        self._epoch = engine._epoch

    @property
    def multiset(self) -> Multiset:
        """The agent-state multiset after this round (lazily snapshotted)."""
        engine = self._engine
        if engine._epoch != self._epoch:
            raise SimulationError(
                "this array-engine round record no longer reflects the "
                "engine's state (a later round already ran); read "
                "record.multiset before advancing, or run with "
                'history="full", which does exactly that'
            )
        return engine._maintained.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArrayRoundRecord(round={self.round_index}, "
            f"objective={self.objective!r}, converged={self.converged})"
        )


class ArrayEngine:
    """Simulate one kernel algorithm over flat state arrays.

    Implements the same :class:`~repro.simulation.protocol.Engine`
    protocol as the reference :class:`~repro.simulation.engine.Simulator`
    and produces value-identical results for every algorithm that
    declares a :attr:`~repro.core.algorithm.SelfSimilarAlgorithm.kernel`;
    algorithms without one (the partial variants, hull, circle, sorting)
    are rejected at construction with a pointer back to the reference
    engine.

    Parameters
    ----------
    algorithm:
        The kernel-declaring :class:`SelfSimilarAlgorithm` to execute.
    environment:
        The environment model producing per-round availability.  Its
        random draws are made exactly as the reference engine makes them,
        which is what keeps the two engines on one random stream.
    initial_values:
        The problem inputs, one per agent; count must match the
        environment's topology.
    scheduler:
        How groups are formed each round; defaults to
        :class:`MaximalGroupsScheduler`, whose partition the engine
        derives itself from the effective edge set (the scheduler draws
        no randomness, so bypassing it is stream-neutral).  Randomized
        schedulers run for real, on the run RNG, with the same draws as
        the reference engine.
    seed:
        Seed of the run's random generator; drawn and recorded when None,
        exactly as the reference engine does.
    record_trace:
        Selects the default ``history`` retention of :meth:`run`
        (``"full"`` when True, ``"objective"`` when False), mirroring the
        reference engine's flag.
    cross_check:
        Debug flag.  When True, every vectorized group result is
        re-derived from the algorithm's own step rule through the full
        relation judge, the maintained bag/fingerprint/objective are
        verified against a from-scratch recomputation every round, and
        the engine's component walk is verified against
        :func:`connected_component_tuples` — any divergence raises
        :class:`SimulationError`.
    """

    def __init__(
        self,
        algorithm: SelfSimilarAlgorithm,
        environment: Environment,
        initial_values: Sequence[Any],
        scheduler: Scheduler | None = None,
        seed: int | None = None,
        record_trace: bool = True,
        cross_check: bool = False,
    ):
        if len(initial_values) != environment.num_agents:
            raise SimulationError(
                f"{len(initial_values)} initial values supplied for "
                f"{environment.num_agents} agents"
            )
        kernel = getattr(algorithm, "kernel", None)
        if kernel is None:
            raise SpecificationError(
                f"algorithm {algorithm.name!r} declares no vectorizable "
                "kernel, so the array engine cannot execute it; run it "
                'with engine="reference" (kernels promise a deterministic, '
                "draw-free step rule — see SelfSimilarAlgorithm.kernel)"
            )
        if seed is None:
            # Draw the effective seed explicitly so the run stays
            # reproducible: the result metadata records this value.
            seed = random.randrange(2**63)
        self.algorithm = algorithm
        self.environment = environment
        self.scheduler = scheduler or MaximalGroupsScheduler()
        self.seed = seed
        self.record_trace = record_trace
        self.cross_check = cross_check
        self.initial_values = list(initial_values)
        self._kernel = kernel
        self._guard_rng = _KernelGuardRng(algorithm.name)
        # The maximal scheduler draws no randomness and schedules exactly
        # the connected components, so the engine can derive the partition
        # itself from the effective edges — no Group objects, no O(n)
        # singleton enumeration.  Any other (or subclassed) scheduler runs
        # for real on the run RNG.
        self._maximal_bypass = type(self.scheduler) is MaximalGroupsScheduler

        initial_states = algorithm.initial_states(self.initial_values)
        self._initial_states = list(initial_states)
        self._backend = self._select_backend(kernel, initial_states)
        self._states: Any = None
        self._install_states(initial_states)
        self._initial_multiset = Multiset(initial_states)
        self._target = algorithm.target(initial_states)
        self._target_size = len(self._target)
        self._target_fingerprint = self._target.fingerprint()
        self._state = RoundState(seed, self._initial_multiset)
        # Bumped on every maintained-bag mutation; ArrayRoundRecord uses
        # it to refuse stale lazy snapshots.
        self._epoch = 0
        # Fast fold (numpy backend, no cross-check, exact objective
        # deltas): the maintained bag is rebuilt lazily on first access
        # instead of updated element-by-element every round, and the
        # convergence verdict comes from a vectorized comparison that is
        # provably equivalent to multiset equality with the target — see
        # _vectorized_converged.  The slow path keeps the incremental
        # bag, so cross_check still verifies fingerprints every round.
        self._bag_stale = False
        self._fast_fold = (
            self._backend == "numpy"
            and not cross_check
            and algorithm.objective.supports_delta
        )
        self._fast_target = self._build_fast_target() if self._fast_fold else None
        # Churn bypass: RandomChurnEnvironment draws one uniform per
        # agent then one per edge in a fixed sequence, so the engine can
        # make those draws on a numpy MT19937 seeded with the run RNG's
        # *exact* state (the legacy RandomState shares CPython's
        # generator and 53-bit double derivation bit-for-bit, and the
        # advanced state is written back), then filter agents and edges
        # vectorized.  Exact-type gate, like the maximal bypass: a
        # subclass may override the dynamics.
        self._churn_bypass = (
            self._backend == "numpy"
            and not cross_check
            and type(environment) is RandomChurnEnvironment
        )
        self._churn_pending: tuple | None = None
        if self._churn_bypass:
            self._init_churn_tables()

    # -- storage ---------------------------------------------------------------

    def _select_backend(self, kernel: str, states: Sequence[Hashable]) -> str:
        """Pick the flat representation the initial states admit.

        Only the integer kernels get a machine-word backend, and only
        when the step rule's closed value range provably fits ``int64``;
        everything else (Fractions, tuples, huge ints, float inputs)
        falls back to a plain list of objects, which still benefits from
        the materialization-free round loop.
        """
        if kernel in _INT_KERNELS and all(type(value) is int for value in states):
            if kernel == "sum":
                fits = sum(abs(value) for value in states) <= INT64_MAX
            else:
                fits = all(-(2**63) <= value <= INT64_MAX for value in states)
            if fits:
                return "numpy" if HAVE_NUMPY else "int-array"
        return "list"

    def _install_states(self, states: Sequence[Hashable]) -> None:
        """(Re)build the flat state storage from a list of agent states."""
        if self._backend == "numpy":
            self._states = _numpy.array(states, dtype=_numpy.int64)
        elif self._backend == "int-array":
            self._states = array("q", states)
        else:
            self._states = list(states)

    # -- the explicit run state (see RoundState) --------------------------------

    @property
    def _rng(self) -> random.Random:
        return self._state.rng

    @property
    def _round_index(self) -> int:
        return self._state.round_index

    @property
    def _maintained(self):
        if self._bag_stale:
            # Fast-fold mode deferred the bag update; materialize it from
            # the flat states now.  Rebuilding is not a mutation of the
            # conceptual bag (same contents), so the epoch stays put.
            self._state.maintained = rebuilt_multiset(self.current_states())
            self._bag_stale = False
        return self._state.maintained

    # -- state access ------------------------------------------------------------

    def current_states(self) -> list:
        """Return the current agent states, indexed by agent id."""
        if self._backend == "list":
            return list(self._states)
        return self._states.tolist()

    def current_multiset(self) -> Multiset:
        """Return the current agent states as a multiset."""
        return self._maintained.snapshot()

    @property
    def target(self) -> Multiset:
        """The multiset ``S* = f(S(0))`` the agents must reach and keep."""
        return self._target

    @property
    def round_index(self) -> int:
        """Index of the next round :meth:`steps` will execute."""
        return self._round_index

    def has_converged(self) -> bool:
        """Return True when the agents are currently at ``S*``."""
        return self._maintained.matches(self._target)

    # -- execution ----------------------------------------------------------------

    def reset(self) -> None:
        """Restore the initial configuration (same seed, same initial values)."""
        self._state.reset(self.seed, self._initial_multiset)
        self._install_states(self._initial_states)
        self.environment.reset()
        self._bag_stale = False
        self._churn_pending = None
        self._epoch += 1

    # -- checkpoint / restore -------------------------------------------------------

    def checkpoint(self) -> EngineCheckpoint:
        """Serialize the run state at the current round boundary.

        Same codec and same shape as the reference engine's checkpoint
        (``engine="array"``): agent states, RNG state, the maintained
        objective value, the environment's mutable state.  Per-agent
        participation counters do not exist here (the engine never
        materializes agents), so ``agent_counters`` stays None.
        """
        state = self._state
        return EngineCheckpoint(
            engine="array",
            seed=self.seed,
            round_index=state.round_index,
            rng_state=encode_rng_state(state.rng.getstate()),
            agent_states=[encode_state(value) for value in self.current_states()],
            objective_value=encode_state(state.objective_value),
            environment=self.environment.state_dict(),
        )

    def restore(self, checkpoint: EngineCheckpoint | RunCheckpoint | dict) -> None:
        """Restore a checkpoint into this (identically-constructed) engine.

        Same contract as the reference engine: engine kind, seed and
        agent count are verified, the RNG and environment state are
        restored exactly, and the maintained bag is rebuilt from the
        restored states — the continued run is value-identical to the
        uninterrupted one.
        """
        if isinstance(checkpoint, RunCheckpoint):
            checkpoint = checkpoint.engine
        checkpoint = engine_checkpoint_of(checkpoint)
        if checkpoint.engine != "array":
            raise SimulationError(
                f"cannot restore a {checkpoint.engine!r} checkpoint into "
                "the array engine"
            )
        if checkpoint.seed != self.seed:
            raise SimulationError(
                f"checkpoint was taken under seed {checkpoint.seed}, but "
                f"this engine runs seed {self.seed}; restore requires an "
                "identically-constructed engine"
            )
        if len(checkpoint.agent_states) != self.environment.num_agents:
            raise SimulationError(
                f"checkpoint holds {len(checkpoint.agent_states)} agent "
                f"states for {self.environment.num_agents} agents"
            )
        state = self._state
        state.rng.setstate(decode_rng_state(checkpoint.rng_state))
        state.round_index = checkpoint.round_index
        self._install_states(
            [decode_state(encoded) for encoded in checkpoint.agent_states]
        )
        self.environment.load_state(checkpoint.environment)
        state.maintained = rebuilt_multiset(self.current_states())
        state.objective_value = decode_state(checkpoint.objective_value)
        self._bag_stale = False
        self._churn_pending = None
        self._epoch += 1

    # -- the round loop --------------------------------------------------------------

    def _advance_environment(self, round_index: int) -> EnvironmentState | None:
        """One environment transition.

        The plain :meth:`Environment.advance` draws exactly the random
        numbers :meth:`advance_with_delta` draws (that is the
        delta-reporting contract, pinned by the environment parity
        suite), so the array engine and the reference engine consume one
        identical random stream whichever bookkeeping mode each uses.

        Under the churn bypass the same draws are made vectorized on a
        state-shared MT19937 (see :meth:`_churn_advance`); with the
        maximal scheduler on top, no :class:`EnvironmentState` is needed
        at all — the round goes straight from boolean masks to the
        component arrays, and this method returns None with the masks
        parked in ``_churn_pending``.
        """
        if self._churn_bypass:
            return self._churn_advance(round_index)
        return self.environment.advance(round_index, self._rng)

    # -- the churn bypass ----------------------------------------------------

    def _init_churn_tables(self) -> None:
        """Precompute the arrays the vectorized churn advance filters.

        ``agent_ids`` and the edge endpoints are frozen in exactly the
        iteration order :meth:`RandomChurnEnvironment._advance` consumes
        its draws, so a boolean mask over the draw vector selects the
        same agents and edges the reference loop selects.
        """
        np = _numpy
        env = self.environment
        agent_ids = np.fromiter(env.topology.agent_ids, dtype=np.int64)
        if agent_ids.size and int(agent_ids.min()) < 0:
            # The enabled-lookup table indexes by agent id; negative ids
            # (no topology in this library produces them) fall back to
            # the reference advance.
            self._churn_bypass = False
            return
        edges = env._edge_sequence
        self._churn_agent_ids = agent_ids
        self._churn_edges = edges
        self._churn_edge_u = np.fromiter(
            (edge[0] for edge in edges), dtype=np.int64, count=len(edges)
        )
        self._churn_edge_v = np.fromiter(
            (edge[1] for edge in edges), dtype=np.int64, count=len(edges)
        )
        self._churn_lookup_size = int(agent_ids.max()) + 1 if agent_ids.size else 0
        # State container only — every use starts from set_state() with
        # the run RNG's exact MT19937 state, so no seeding happens here.
        self._churn_rs = np.random.RandomState()

    def _churn_advance(self, round_index: int) -> EnvironmentState | None:
        """RandomChurnEnvironment.advance, with the draws made vectorized.

        numpy's legacy ``RandomState`` runs the same MT19937 core as
        :class:`random.Random` and derives doubles with the identical
        ``(a >> 5, b >> 6)`` 53-bit recipe, and the two state tuples
        interconvert losslessly — so the batch of uniforms drawn here is
        bit-for-bit the stream the reference loop would draw, and
        writing the advanced state back leaves the run RNG exactly where
        ``environment.advance`` would have left it.
        """
        np = _numpy
        env = self.environment
        rng = self._rng
        version, internal, gauss = rng.getstate()
        rs = self._churn_rs
        rs.set_state(("MT19937", np.array(internal[:-1], dtype=np.uint32), internal[-1]))
        num_agents = self._churn_agent_ids.shape[0]
        draws = rs.random_sample(num_agents + self._churn_edge_u.shape[0])
        keys, pos = rs.get_state()[1:3]
        rng.setstate((version, tuple(keys.tolist()) + (int(pos),), gauss))
        agent_up = env.agent_up_probability
        enabled_mask = None if agent_up >= 1.0 else draws[:num_agents] < agent_up
        edge_mask = draws[num_agents:] < env.edge_up_probability
        env._previous = None  # exactly what Environment.advance() leaves behind
        if self._maximal_bypass:
            self._churn_pending = (enabled_mask, edge_mask)
            return None
        return self._churn_state(enabled_mask, edge_mask, round_index)

    def _churn_state(self, enabled_mask, edge_mask, round_index: int) -> EnvironmentState:
        """Masks -> the EnvironmentState the reference advance builds.

        Insertion order is replicated (agents ascending by draw order,
        edges in ``_edge_sequence`` order), so even frozenset iteration
        order matches a reference-built state.
        """
        env = self.environment
        if enabled_mask is None or bool(enabled_mask.all()):
            enabled = env._all_agents
        else:
            enabled = frozenset(self._churn_agent_ids[enabled_mask].tolist())
        edges = self._churn_edges
        selected = frozenset(
            edges[index] for index in _numpy.flatnonzero(edge_mask).tolist()
        )
        return EnvironmentState(enabled, selected, round_index)

    def _churn_components(self):
        """The maximal partition, straight from the pending churn masks.

        Filters the effective edges (both endpoints enabled) as arrays,
        labels connected components by min-label propagation with full
        path compression, and returns the partition in the flat
        ``(members, offsets, sizes)`` form the kernels consume — groups
        ordered by smallest member, members ascending (the order every
        scheduler presents, which the sum collector tie-break needs).
        """
        np = _numpy
        enabled_mask, edge_mask = self._churn_pending
        self._churn_pending = None
        edge_u = self._churn_edge_u
        edge_v = self._churn_edge_v
        if enabled_mask is None:
            keep = edge_mask
            enabled_count = self._churn_agent_ids.shape[0]
        else:
            up = np.zeros(self._churn_lookup_size, dtype=bool)
            up[self._churn_agent_ids[enabled_mask]] = True
            keep = edge_mask & up[edge_u] & up[edge_v]
            enabled_count = int(np.count_nonzero(enabled_mask))
        u = edge_u[keep]
        v = edge_v[keep]
        empty = np.empty(0, dtype=np.int64)
        if not u.shape[0]:
            return empty, empty, empty, enabled_count, (1 if enabled_count else 0)
        nodes, inverse = np.unique(np.concatenate((u, v)), return_inverse=True)
        index_u = inverse[: u.shape[0]]
        index_v = inverse[u.shape[0] :]
        labels = np.arange(nodes.shape[0], dtype=np.int64)
        while True:
            # Scatter-min across both edge directions, then compress
            # label chains to their roots; converges in O(log diameter)
            # sweeps because labels only ever decrease toward the
            # component minimum.
            np.minimum.at(labels, index_u, labels[index_v])
            np.minimum.at(labels, index_v, labels[index_u])
            while True:
                jumped = labels[labels]
                if np.array_equal(jumped, labels):
                    break
                labels = jumped
            if np.array_equal(labels[index_u], labels[index_v]):
                break
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        flat = nodes[order]
        offsets = np.flatnonzero(
            np.r_[True, sorted_labels[1:] != sorted_labels[:-1]]
        ).astype(np.int64)
        sizes = np.diff(np.append(offsets, flat.shape[0]))
        group_steps = offsets.shape[0] + (enabled_count - nodes.shape[0])
        return flat, offsets, sizes, group_steps, int(sizes.max())

    def _component_groups(
        self, environment_state: EnvironmentState
    ) -> tuple[list[list[int]], int, int]:
        """The maximal partition, without ``Group`` objects.

        Walks the effective edge set once and returns the non-singleton
        connected components (members sorted ascending — the member order
        every scheduler presents, and the order the sum kernel's
        collector tie-break depends on), plus the total group count
        (components + enabled singletons) and the largest group size.
        """
        adjacency: dict[int, list[int]] = {}
        for a, b in environment_state.effective_edges():
            neighbors = adjacency.get(a)
            if neighbors is None:
                adjacency[a] = [b]
            else:
                neighbors.append(b)
            neighbors = adjacency.get(b)
            if neighbors is None:
                adjacency[b] = [a]
            else:
                neighbors.append(a)
        components: list[list[int]] = []
        largest = 0
        visited: set[int] = set()
        for start in adjacency:
            if start in visited:
                continue
            visited.add(start)
            stack = [start]
            members = [start]
            while stack:
                for neighbor in adjacency[stack.pop()]:
                    if neighbor not in visited:
                        visited.add(neighbor)
                        members.append(neighbor)
                        stack.append(neighbor)
            members.sort()
            components.append(members)
            if len(members) > largest:
                largest = len(members)
        enabled_count = len(environment_state.enabled_agents)
        singleton_count = enabled_count - len(visited)
        group_steps = len(components) + singleton_count
        if not components:
            largest = 1 if enabled_count else 0
        if self.cross_check:
            self._verify_components(environment_state, components, singleton_count)
        return components, group_steps, largest

    def _execute_round(self, round_index: int) -> ArrayRoundRecord:
        """Execute one round — one environment transition, one vectorized
        agent transition — and record what happened.

        Under the maximal scheduler the partition is derived straight
        from the effective edges; any other scheduler runs for real (its
        random draws are part of the run stream).  Group steps then run
        through the numpy kernel, the ``array('q')``/list object path, or
        — always, under ``cross_check`` — the algorithm's own step rule,
        and the resulting ``(removed, added)`` delta folds into the
        maintained round state exactly as in the reference engine.
        """
        environment_state = self._advance_environment(round_index)
        if self._maximal_bypass:
            if environment_state is None:
                # Vectorized churn round: masks -> component arrays ->
                # flat kernel reductions, no sets or Group lists at all.
                flat, offsets, sizes, group_steps, largest = self._churn_components()
                if flat.shape[0]:
                    removed, added, improving = self._numpy_flat_round(
                        flat, offsets, sizes
                    )
                else:
                    removed, added, improving = [], [], 0
                objective, converged = self._fold_round(removed, added)
                return ArrayRoundRecord(
                    self,
                    round_index,
                    objective,
                    converged,
                    group_steps,
                    improving,
                    largest,
                )
            groups, group_steps, largest = self._component_groups(environment_state)
        else:
            scheduled = self.scheduler.schedule(environment_state, self._rng)
            _validate_partition(scheduled, self.environment.num_agents)
            groups = []
            group_steps = 0
            largest = 0
            for group in scheduled:
                size = len(group.members)
                if size == 0:
                    continue
                group_steps += 1
                if size > largest:
                    largest = size
                if size >= 2:
                    # Singleton kernel steps are identity by contract
                    # (and draw nothing), so only real groups execute.
                    groups.append(group.members)

        if groups:
            if self._backend == "numpy":
                removed, added, improving = self._numpy_group_round(groups)
            else:
                removed, added, improving = self._python_group_round(groups)
        else:
            removed, added, improving = [], [], 0

        objective, converged = self._fold_round(removed, added)
        return ArrayRoundRecord(
            self,
            round_index,
            objective,
            converged,
            group_steps,
            improving,
            largest,
        )

    def _numpy_group_round(
        self, groups: Sequence[Sequence[int]]
    ) -> tuple[list, list, int]:
        """One round of group steps as flat ``reduceat`` reductions.

        Every group is at least a pair, so the segment offsets are
        strictly increasing and no reduction sees an empty segment.
        Returns the round's ``(removed, added)`` delta as Python ints
        (what the maintained bag and the tagged checkpoint codec store)
        plus the number of groups that changed.
        """
        np = _numpy
        group_count = len(groups)
        sizes = np.fromiter(map(len, groups), dtype=np.int64, count=group_count)
        total = int(sizes.sum())
        flat = np.fromiter(
            (member for members in groups for member in members),
            dtype=np.int64,
            count=total,
        )
        offsets = np.zeros(group_count, dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        return self._numpy_flat_round(flat, offsets, sizes, groups)

    def _numpy_flat_round(
        self, flat, offsets, sizes, groups: Sequence[Sequence[int]] | None = None
    ) -> tuple[list, list, int]:
        """The reduceat core, on a partition already in flat-array form.

        ``groups`` is only needed for the cross-check re-derivation; the
        vectorized churn path (which never runs under cross_check)
        passes the arrays straight from the component labelling.
        """
        np = _numpy
        states = self._states
        group_count = offsets.shape[0]
        total = flat.shape[0]
        values = states[flat]

        kernel = self._kernel
        if kernel == "minimum":
            new_values = np.repeat(np.minimum.reduceat(values, offsets), sizes)
        elif kernel == "maximum":
            new_values = np.repeat(np.maximum.reduceat(values, offsets), sizes)
        else:  # "sum" — _INT_KERNELS gates which kernels reach this path
            totals = np.add.reduceat(values, offsets)
            positives = np.add.reduceat((values > 0).astype(np.int64), offsets)
            group_ids = np.repeat(np.arange(group_count, dtype=np.int64), sizes)
            maxima = np.maximum.reduceat(values, offsets)
            positions = np.arange(total, dtype=np.int64)
            # The step rule's collector is the first occurrence of the
            # group maximum in member order: mask non-maxima to one past
            # the end, take the per-group minimum position.
            collectors = np.minimum.reduceat(
                np.where(values == maxima[group_ids], positions, total), offsets
            )
            new_values = np.zeros(total, dtype=np.int64)
            new_values[collectors] = totals
            # Groups with at most one positive value stutter (the step
            # rule's guard): restore their slots wholesale.
            inactive = positives <= 1
            if inactive.any():
                keep = np.repeat(inactive, sizes)
                new_values[keep] = values[keep]

        changed = values != new_values
        if not changed.any():
            if self.cross_check:
                self._verify_kernel_groups(groups, values.tolist(), values.tolist())
            return [], [], 0
        removed = values[changed].tolist()
        added = new_values[changed].tolist()
        improving = int(np.logical_or.reduceat(changed, offsets).sum())
        if self.cross_check:
            self._verify_kernel_groups(groups, values.tolist(), new_values.tolist())
        states[flat[changed]] = new_values[changed]
        return removed, added, improving

    def _python_group_round(
        self, groups: Sequence[Sequence[int]]
    ) -> tuple[list, list, int]:
        """One round of group steps through the algorithm's own step rule.

        The pure-Python path (and the only path for non-int kernels):
        kernel step rules are deterministic and draw-free by contract, so
        calling them directly — with the guard RNG enforcing the no-draw
        promise — reproduces the reference engine's state transitions
        exactly, while the flat storage and delta bookkeeping keep the
        per-round object traffic at O(|active agents|).
        """
        algorithm = self.algorithm
        group_step = algorithm.group_step
        guard = self._guard_rng
        storage = self._states
        cross_check = self.cross_check
        removed: list = []
        added: list = []
        improving = 0
        try:
            for members in groups:
                before = [storage[member] for member in members]
                if cross_check:
                    after = self._checked_group_step(before)
                else:
                    after = group_step(before, guard)
                    if type(after) is not list:
                        after = list(after)
                    if len(after) != len(before):
                        raise SpecificationError(
                            f"group step of {algorithm.name!r} returned "
                            f"{len(after)} states for a group of "
                            f"{len(before)} agents"
                        )
                group_changed = False
                for position, member in enumerate(members):
                    new = after[position]
                    if new != before[position]:
                        storage[member] = new
                        removed.append(before[position])
                        added.append(new)
                        group_changed = True
                if group_changed:
                    improving += 1
        except BaseException:
            # A mid-round exception must not desynchronise the maintained
            # round state: earlier groups already installed their new
            # states.  Fold what was installed, drop the cached objective
            # (it describes the pre-round bag), and re-raise — the same
            # contract as the reference engine's round loop.
            if removed or added:
                self._maintained.apply_delta(removed, added)
                self._state.objective_value = None
                self._epoch += 1
            raise
        return removed, added, improving

    def _checked_group_step(self, before: list) -> list:
        """Run one group step through the full relation judge (cross-check).

        ``apply_group_step`` with ``fast_stutter=False`` judges the step
        against ``D`` with enforcement, and the verdict doubles as a
        check of the kernel contract itself: a changed group must have
        been judged an improvement.
        """
        after, judgement = self.algorithm.apply_group_step(
            before, self._guard_rng, fast_stutter=False
        )
        changed = after != before
        if changed != (judgement.kind is StepKind.IMPROVEMENT):
            raise SimulationError(
                f"kernel contract violated by {self.algorithm.name!r}: a "
                f"group step {'changed' if changed else 'kept'} the states "
                f"but was judged {judgement.kind.name}"
            )
        return after

    def _fold_round(self, removed: list, added: list) -> tuple[float, bool]:
        """Fold one round's state delta into the maintained round state.

        Mirrors the reference engine's incremental fold, minus the
        per-round snapshot: the objective delta is priced against the
        maintained bag itself (kernel objectives all support exact
        deltas, so the bag is never actually evaluated), and convergence
        is decided by the bag's size → fingerprint → counts comparison.
        """
        state = self._state
        if self._fast_fold:
            if state.objective_value is None:
                state.objective_value = self.algorithm.objective(
                    self._maintained.snapshot()
                )
            if removed or added:
                # Defer the bag update: the flat states already hold the
                # round's outcome, so the bag is rebuilt from them on
                # first access instead of patched element-by-element.
                # The epoch still bumps — the conceptual bag mutated.
                self._bag_stale = True
                self._epoch += 1
                # The exact-delta contract (gated at construction via
                # objective.supports_delta) means the bag argument is
                # never evaluated, so passing the deferred one is safe.
                state.objective_value = self.algorithm.objective_delta(
                    state.objective_value, state.maintained, removed, added
                )
            return state.objective_value, self._vectorized_converged()
        maintained = state.maintained
        if state.objective_value is None:
            # First use: price the objective once, on the pre-delta bag.
            state.objective_value = self.algorithm.objective(maintained.snapshot())
        if removed or added:
            try:
                maintained.apply_delta(removed, added)
            except KeyError as error:
                raise SimulationError(
                    "incremental round state out of sync with the flat "
                    f"agent states: {error.args[0]}"
                ) from error
            self._epoch += 1
        objective = self.algorithm.objective_delta(
            state.objective_value, maintained, removed, added
        )
        state.objective_value = objective
        converged = maintained.matches(self._target)
        if self.cross_check:
            self._verify_maintained_state(objective)
        return objective, converged

    def _build_fast_target(self) -> tuple:
        """Precompute the vectorized form of the convergence test.

        A uniform target (minimum/maximum: every agent at the extremum)
        reduces multiset equality to one elementwise comparison.  Any
        other target (sum: total on one agent, zero elsewhere) gets a
        cheap necessary gate — the count of slots differing from the
        target's most common value must match — and only when the gate
        passes does the O(n log n) sorted comparison run, which a
        conservation-law kernel reaches at most a handful of times per
        run.  Both forms decide exactly ``multiset(states) == target``.
        """
        np = _numpy
        pairs = self._target.most_common()
        if len(pairs) <= 1:
            value = pairs[0][0] if pairs else 0
            return ("uniform", value)
        common, multiplicity = pairs[0]
        sorted_target = np.sort(
            np.fromiter(self._target, dtype=np.int64, count=self._target_size)
        )
        return ("mixed", common, self._target_size - multiplicity, sorted_target)

    def _vectorized_converged(self) -> bool:
        """Exact convergence verdict from the flat states (fast fold)."""
        np = _numpy
        states = self._states
        target = self._fast_target
        if target[0] == "uniform":
            return bool((states == target[1]).all())
        _, common, expected_other, sorted_target = target
        if int(np.count_nonzero(states != common)) != expected_other:
            return False
        return bool(np.array_equal(np.sort(states), sorted_target))

    # -- cross-checks ------------------------------------------------------------

    def _verify_components(
        self,
        environment_state: EnvironmentState,
        components: Sequence[Sequence[int]],
        singleton_count: int,
    ) -> None:
        """Debug cross-check: edge walk == from-scratch component walk."""
        expected = connected_component_tuples(
            environment_state.enabled_agents, environment_state.effective_edges()
        )
        expected_groups = [c for c in expected if len(c) >= 2]
        walked = sorted(tuple(members) for members in components)
        if walked != expected_groups:
            raise SimulationError(
                "array-engine component walk diverged from the reference "
                f"walk at round {environment_state.round_index}: "
                f"{walked!r} vs {expected_groups!r}"
            )
        expected_singletons = len(expected) - len(expected_groups)
        if singleton_count != expected_singletons:
            raise SimulationError(
                "array-engine singleton count diverged at round "
                f"{environment_state.round_index}: {singleton_count} vs "
                f"{expected_singletons}"
            )

    def _verify_kernel_groups(
        self,
        groups: Sequence[Sequence[int]],
        flat_before: list,
        flat_after: list,
    ) -> None:
        """Debug cross-check: vectorized results == the step rule's results."""
        position = 0
        for members in groups:
            size = len(members)
            before = flat_before[position : position + size]
            after = flat_after[position : position + size]
            position += size
            expected = self._checked_group_step(before)
            if expected != after:
                raise SimulationError(
                    f"vectorized {self._kernel!r} kernel diverged from the "
                    f"step rule on group {tuple(members)!r}: kernel produced "
                    f"{after!r}, step rule produced {expected!r}"
                )

    def _verify_maintained_state(self, objective: float) -> None:
        """Debug cross-check: maintained state == full recomputation."""
        full = Multiset(self.current_states())
        maintained = self._maintained.snapshot()
        if full != maintained:
            raise SimulationError(
                "array-engine maintained multiset diverged from the flat "
                f"agent states: maintained {maintained!r} vs actual {full!r}"
            )
        if full.fingerprint() != self._maintained.fingerprint():
            raise SimulationError(
                "array-engine fingerprint diverged from recomputed "
                f"fingerprint ({self._maintained.fingerprint():#x} vs "
                f"{full.fingerprint():#x})"
            )
        full_objective = self.algorithm.objective(full)
        if full_objective != objective:
            raise SimulationError(
                "array-engine objective diverged from full recomputation "
                f"({objective!r} vs {full_objective!r})"
            )

    # -- the Engine protocol -----------------------------------------------------

    def steps(self, max_rounds: int | None = None) -> Iterator[ArrayRoundRecord]:
        """Stream the simulation, one :class:`ArrayRoundRecord` per round.

        Same contract as the reference engine: lazy, resumable, no loose
        state when abandoned.
        """
        executed = 0
        while max_rounds is None or executed < max_rounds:
            record = self._execute_round(self._round_index)
            self._state.round_index += 1
            executed += 1
            yield record

    def initial_snapshot(self) -> tuple[Multiset, float]:
        """The pre-run ``(multiset, objective)`` pair (Engine protocol)."""
        initial_multiset = self._maintained.snapshot()
        if self._state.objective_value is None:
            self._state.objective_value = self.algorithm.objective(initial_multiset)
        return initial_multiset, self._state.objective_value

    def trace_complete(self, converged: bool, stopped_by_callback: bool) -> bool:
        """Once at ``S* = f(S*)``, every further step is a stutter, so the
        observed prefix determines the whole computation — provided the
        algorithm actually enforces ``D`` and the run was not cut short."""
        return converged and self.algorithm.enforce and not stopped_by_callback

    def finish_metadata(self) -> dict:
        """Run metadata recorded on the result (Engine protocol)."""
        return {
            "algorithm": self.algorithm.name,
            "environment": self.environment.describe(),
            "scheduler": self.scheduler.describe(),
            "num_agents": self.environment.num_agents,
            "seed": self.seed,
            "engine": "array",
        }

    def run(
        self,
        max_rounds: int = 1000,
        stop_at_convergence: bool = True,
        extra_rounds_after_convergence: int = 0,
        on_round: Callable[[ArrayRoundRecord], bool | None] | None = None,
        probes: Sequence[Probe] | None = None,
        history: str | None = None,
        resume_from: RunCheckpoint | None = None,
    ) -> SimulationResult:
        """Run the simulation and return a :class:`SimulationResult`.

        Delegates to the shared engine driver exactly as the reference
        engine does; see :func:`~repro.simulation.protocol.run_engine`.
        """
        if history is None:
            history = "full" if self.record_trace else "objective"
        if resume_from is not None:
            self.restore(resume_from)
        return run_engine(
            self,
            max_rounds=max_rounds,
            stop_at_convergence=stop_at_convergence,
            extra_rounds_after_convergence=extra_rounds_after_convergence,
            on_round=on_round,
            probes=probes,
            history=history,
            resume_from=resume_from,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArrayEngine({self.algorithm.name!r}, "
            f"n={self.environment.num_agents}, backend={self._backend!r})"
        )


# -- registry entries -------------------------------------------------------------


@register_engine("reference")
def reference_engine(
    algorithm: SelfSimilarAlgorithm,
    environment: Environment,
    initial_values: Sequence[Any],
    scheduler: Scheduler | None = None,
    seed: int | None = None,
    record_trace: bool = True,
    **kwargs: Any,
) -> Simulator:
    """The byte-identical object-per-agent reference engine (the classic Simulator)."""
    return Simulator(
        algorithm=algorithm,
        environment=environment,
        initial_values=initial_values,
        scheduler=scheduler,
        seed=seed,
        record_trace=record_trace,
        **kwargs,
    )


@register_engine("array")
def array_engine(
    algorithm: SelfSimilarAlgorithm,
    environment: Environment,
    initial_values: Sequence[Any],
    scheduler: Scheduler | None = None,
    seed: int | None = None,
    record_trace: bool = True,
    **kwargs: Any,
) -> ArrayEngine:
    """The struct-of-arrays vectorized engine for kernel algorithms (100k-1M agents)."""
    return ArrayEngine(
        algorithm=algorithm,
        environment=environment,
        initial_values=initial_values,
        scheduler=scheduler,
        seed=seed,
        record_trace=record_trace,
        **kwargs,
    )
