"""Experiment runner: repeated runs and parameter sweeps.

The benchmark harness (and the examples) repeatedly need the same loop:
build an environment, run the algorithm over several seeds, aggregate the
convergence statistics, and move on to the next parameter value.  This
module centralises that loop so every benchmark stays a short declarative
description of *what* to sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..agents.scheduler import Scheduler
from ..core.algorithm import SelfSimilarAlgorithm
from ..environment.base import Environment
from .engine import Simulator
from .metrics import RunStatistics, aggregate
from .result import SimulationResult

__all__ = ["SweepPoint", "run_repeated", "sweep"]

EnvironmentFactory = Callable[[int], Environment]
SchedulerFactory = Callable[[], Scheduler] | None


@dataclass
class SweepPoint:
    """One point of a parameter sweep: the parameter value, its statistics
    and the individual run results (kept for deeper inspection in tests)."""

    parameter: Any
    statistics: RunStatistics
    results: list[SimulationResult]


def run_repeated(
    algorithm: SelfSimilarAlgorithm,
    environment_factory: EnvironmentFactory,
    initial_values: Sequence[Any],
    repetitions: int = 5,
    max_rounds: int = 2000,
    scheduler_factory: SchedulerFactory = None,
    base_seed: int = 0,
) -> list[SimulationResult]:
    """Run ``algorithm`` ``repetitions`` times with different seeds.

    ``environment_factory`` receives the seed so that stochastic
    environments differ between repetitions while remaining reproducible.
    """
    results = []
    for repetition in range(repetitions):
        seed = base_seed + repetition
        environment = environment_factory(seed)
        scheduler = scheduler_factory() if scheduler_factory else None
        simulator = Simulator(
            algorithm=algorithm,
            environment=environment,
            initial_values=initial_values,
            scheduler=scheduler,
            seed=seed,
        )
        results.append(simulator.run(max_rounds=max_rounds))
    return results


def sweep(
    algorithm: SelfSimilarAlgorithm,
    parameter_values: Iterable[Any],
    environment_factory: Callable[[Any, int], Environment],
    initial_values: Sequence[Any],
    repetitions: int = 5,
    max_rounds: int = 2000,
    scheduler_factory: SchedulerFactory = None,
    base_seed: int = 0,
) -> list[SweepPoint]:
    """Sweep a parameter, aggregating repeated runs at each value.

    ``environment_factory`` receives ``(parameter_value, seed)`` and builds
    the environment for that configuration.
    """
    points = []
    for parameter in parameter_values:
        results = run_repeated(
            algorithm=algorithm,
            environment_factory=lambda seed, p=parameter: environment_factory(p, seed),
            initial_values=initial_values,
            repetitions=repetitions,
            max_rounds=max_rounds,
            scheduler_factory=scheduler_factory,
            base_seed=base_seed,
        )
        points.append(
            SweepPoint(parameter=parameter, statistics=aggregate(results), results=results)
        )
    return points
