"""Legacy experiment runner: repeated runs and parameter sweeps.

These helpers predate the declarative experiment layer and survive as
thin compatibility wrappers: they wrap live algorithm/environment objects
in closures and delegate the execution loop to
:func:`repro.simulation.batch.run_callables`.  New code should describe
experiments as :class:`~repro.experiment.ExperimentSpec` data and execute
them through :class:`~repro.simulation.batch.BatchRunner` (serializable,
distributable, CLI-runnable); these wrappers remain for call sites that
genuinely need to pass pre-built objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..agents.scheduler import Scheduler
from ..core.algorithm import SelfSimilarAlgorithm
from ..environment.base import Environment
from .batch import run_callables
from .engine import Simulator
from .metrics import RunStatistics, aggregate
from .result import SimulationResult

__all__ = ["SweepPoint", "run_repeated", "sweep"]

EnvironmentFactory = Callable[[int], Environment]
SchedulerFactory = Callable[[], Scheduler] | None


@dataclass
class SweepPoint:
    """One point of a parameter sweep: the parameter value, its statistics
    and the individual run results (kept for deeper inspection in tests)."""

    parameter: Any
    statistics: RunStatistics
    results: list[SimulationResult]


def run_repeated(
    algorithm: SelfSimilarAlgorithm,
    environment_factory: EnvironmentFactory,
    initial_values: Sequence[Any],
    repetitions: int = 5,
    max_rounds: int = 2000,
    scheduler_factory: SchedulerFactory = None,
    base_seed: int = 0,
) -> list[SimulationResult]:
    """Run ``algorithm`` ``repetitions`` times with different seeds.

    ``environment_factory`` receives the seed so that stochastic
    environments differ between repetitions while remaining reproducible.
    """

    def job(seed: int) -> Callable[[], SimulationResult]:
        def run() -> SimulationResult:
            simulator = Simulator(
                algorithm=algorithm,
                environment=environment_factory(seed),
                initial_values=initial_values,
                scheduler=scheduler_factory() if scheduler_factory else None,
                seed=seed,
            )
            return simulator.run(max_rounds=max_rounds)

        return run

    return run_callables([job(base_seed + rep) for rep in range(repetitions)])


def sweep(
    algorithm: SelfSimilarAlgorithm,
    parameter_values: Iterable[Any],
    environment_factory: Callable[[Any, int], Environment],
    initial_values: Sequence[Any],
    repetitions: int = 5,
    max_rounds: int = 2000,
    scheduler_factory: SchedulerFactory = None,
    base_seed: int = 0,
) -> list[SweepPoint]:
    """Sweep a parameter, aggregating repeated runs at each value.

    ``environment_factory`` receives ``(parameter_value, seed)`` and builds
    the environment for that configuration.
    """
    points = []
    for parameter in parameter_values:
        results = run_repeated(
            algorithm=algorithm,
            environment_factory=lambda seed, p=parameter: environment_factory(p, seed),
            initial_values=initial_values,
            repetitions=repetitions,
            max_rounds=max_rounds,
            scheduler_factory=scheduler_factory,
            base_seed=base_seed,
        )
        points.append(
            SweepPoint(parameter=parameter, statistics=aggregate(results), results=results)
        )
    return points
