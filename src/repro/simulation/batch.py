"""Parallel execution of declarative experiments.

A :class:`BatchRunner` takes a list (or grid) of
:class:`~repro.experiment.ExperimentSpec` and executes every (spec, seed)
pair across a :mod:`concurrent.futures` pool.  Because specs and results
are plain serializable data, the work units cross process boundaries
untouched: each worker rebuilds its spec from a dictionary, runs the
simulator, and ships back :meth:`SimulationResult.to_dict` — nothing in
the hot path depends on shared state, which is what lets one driver fan a
parameter study out over every core.

The produced :class:`BatchResult` aggregates per-experiment statistics
(via :func:`repro.simulation.metrics.aggregate_records`) and serializes to
JSON, so batch outputs can be persisted, diffed across runs, and fed to
downstream tooling::

    specs = expand_grid(base, {"environment_params.edge_up_probability":
                               [0.1, 0.3, 1.0]})
    batch = BatchRunner(max_workers=4).run(specs)
    path.write_text(batch.to_json())

Single runs inside each worker are byte-identical to calling
``spec.run(seed)`` in-process: the runner adds distribution, never
different semantics.
"""

from __future__ import annotations

import json
import traceback
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from .metrics import (
    RunStatistics,
    aggregate_records,
    format_table,
    statistics_from_payloads,
)
from .probes import StatsProbe
from .result import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from ..experiment import ExperimentSpec

__all__ = ["BatchItem", "BatchResult", "BatchRunner", "run_callables"]

#: Executor backends the runner knows how to drive.
BACKENDS = ("process", "thread", "serial")


def _execute_payload(payload: tuple[dict, int]) -> dict:
    """Run one (spec dict, seed) work unit — the function shipped to workers.

    Module-level so it pickles; imports lazily so a worker process only
    pays for what it runs (and so this module never participates in an
    import cycle with :mod:`repro.experiment`).
    """
    spec_data, seed = payload
    from ..experiment import ExperimentSpec

    spec = ExperimentSpec.from_dict(spec_data)
    return spec.run(seed).to_dict()


@dataclass(frozen=True)
class BatchItem:
    """Outcome of one (experiment, seed) work unit."""

    label: str
    seed: int
    spec: dict
    result: dict | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the run completed (converged or not) without raising."""
        return self.error is None

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "seed": self.seed,
            "spec": self.spec,
            "result": self.result,
            "error": self.error,
        }


class BatchResult:
    """All outcomes of one batch, with aggregation and serialization."""

    def __init__(self, items: Sequence[BatchItem]):
        self.items = list(items)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def labels(self) -> list[str]:
        """Experiment labels in first-seen order."""
        seen: dict[str, None] = {}
        for item in self.items:
            seen.setdefault(item.label, None)
        return list(seen)

    def results_for(self, label: str) -> list[dict]:
        """The serialized results of every completed run of one experiment."""
        return [
            item.result
            for item in self.items
            if item.label == label and item.result is not None
        ]

    def failures(self) -> list[BatchItem]:
        """Work units that raised instead of completing."""
        return [item for item in self.items if not item.ok]

    def statistics(self) -> dict[str, RunStatistics]:
        """Per-experiment summary statistics over the completed runs."""
        return {
            label: aggregate_records(self.results_for(label))
            for label in self.labels()
        }

    def probe_payloads(self, label: str) -> dict[str, list]:
        """Probe payloads of one experiment's completed runs, merged by
        probe name (one payload per run, in item order).

        Workers construct their own probe instances and ship payloads back
        inside the serialized result, so this is how streaming
        observability crosses the process boundary: a fanned-out sweep's
        online temporal verdicts or running statistics are collected here
        without any shared state.
        """
        merged: dict[str, list] = {}
        for record in self.results_for(label):
            for name, payload in (record.get("probes") or {}).items():
                merged.setdefault(name, []).append(payload)
        return merged

    def probe_statistics(self, label: str) -> RunStatistics:
        """Merge ``stats``-probe payloads of one experiment into a single
        :class:`RunStatistics` (see
        :func:`~repro.simulation.metrics.statistics_from_payloads`)."""
        payloads = self.probe_payloads(label).get(StatsProbe.name, [])
        return statistics_from_payloads(payloads)

    def summary_table(self) -> str:
        """An aligned text table of per-experiment statistics."""
        rows = []
        for label, stats in self.statistics().items():
            rows.append(
                [
                    label,
                    stats.runs,
                    f"{stats.convergence_rate:.2f}",
                    stats.median_rounds,
                    f"{stats.correctness_rate:.2f}",
                ]
            )
        return format_table(
            ["experiment", "runs", "conv. rate", "median rounds", "correct"], rows
        )

    def to_dict(self) -> dict:
        return {"items": [item.to_dict() for item in self.items]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatchResult":
        return cls([BatchItem(**item) for item in data["items"]])

    @classmethod
    def from_json(cls, text: str) -> "BatchResult":
        return cls.from_dict(json.loads(text))


class BatchRunner:
    """Execute many experiment specs across a worker pool.

    Parameters
    ----------
    max_workers:
        Pool size; None lets :mod:`concurrent.futures` pick (one worker
        per core for processes).
    backend:
        ``"process"`` (default — true parallelism, results cross process
        boundaries as dictionaries), ``"thread"`` (parallel I/O, shared
        interpreter) or ``"serial"`` (in-process, deterministic ordering,
        no pool — the debugging mode).
    """

    def __init__(self, max_workers: int | None = None, backend: str = "process"):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.max_workers = max_workers
        self.backend = backend

    # -- execution -------------------------------------------------------------

    def run(
        self, specs: "ExperimentSpec | Iterable[ExperimentSpec]"
    ) -> BatchResult:
        """Run every (spec, seed) pair; one item per pair, in declaration order.

        A raising work unit records its traceback in the corresponding
        :class:`BatchItem` instead of aborting the batch — a 200-point
        sweep should not lose 199 results to one bad configuration.
        """
        from ..experiment import ExperimentSpec

        if isinstance(specs, ExperimentSpec):
            specs = [specs]
        units: list[tuple[str, dict, int]] = []
        for spec in specs:
            spec.validate()
            data = spec.to_dict()
            for seed in spec.seeds:
                units.append((spec.label, data, seed))

        payloads = [(data, seed) for _, data, seed in units]
        outcomes = self._map(_execute_payload, payloads)

        items = []
        for (label, data, seed), (result, error) in zip(units, outcomes):
            items.append(
                BatchItem(label=label, seed=seed, spec=data, result=result, error=error)
            )
        return BatchResult(items)

    def run_grid(
        self, base: "ExperimentSpec", grid: Mapping[str, Sequence[Any]]
    ) -> BatchResult:
        """Expand ``grid`` against ``base`` (see
        :func:`repro.experiment.expand_grid`) and run the whole sweep."""
        from ..experiment import expand_grid

        return self.run(expand_grid(base, grid))

    # -- internals -------------------------------------------------------------

    def _map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> list[tuple[Any, str | None]]:
        """Apply ``fn`` to every payload, capturing per-unit failures."""
        if self.backend == "serial" or len(payloads) <= 1:
            return [_guard(fn, payload) for payload in payloads]
        with self._executor() as pool:
            futures = [pool.submit(_guard, fn, payload) for payload in payloads]
            return [future.result() for future in futures]

    def _executor(self) -> Executor:
        if self.backend == "process":
            return ProcessPoolExecutor(max_workers=self.max_workers)
        return ThreadPoolExecutor(max_workers=self.max_workers)


def _guard(fn: Callable[[Any], Any], payload: Any) -> tuple[Any, str | None]:
    """Run one unit, converting an exception into a recorded traceback."""
    try:
        return fn(payload), None
    except Exception:  # noqa: BLE001 - any worker failure becomes data
        return None, traceback.format_exc()


def run_callables(
    jobs: Sequence[Callable[[], SimulationResult]],
    max_workers: int | None = None,
    backend: str = "serial",
) -> list[SimulationResult]:
    """Execute in-process simulation thunks and return their results in order.

    This is the non-serializable little sibling of :class:`BatchRunner`:
    the legacy ``run_repeated`` / ``sweep`` helpers wrap live algorithm
    and environment objects in closures and delegate the execution loop
    here.  Closures cannot cross process boundaries, so the backends are
    ``"serial"`` (default) and ``"thread"``.
    """
    if backend not in ("serial", "thread"):
        raise ValueError(f"run_callables backend must be serial or thread, got {backend!r}")
    if backend == "serial" or len(jobs) <= 1:
        return [job() for job in jobs]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(job) for job in jobs]
        return [future.result() for future in futures]
