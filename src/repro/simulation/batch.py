"""Parallel execution of declarative experiments.

A :class:`BatchRunner` takes a list (or grid) of
:class:`~repro.experiment.ExperimentSpec` and executes every (spec, seed)
pair across a :mod:`concurrent.futures` pool.  Because specs and results
are plain serializable data, the work units cross process boundaries
untouched: each worker rebuilds its spec from a dictionary, runs the
simulator, and ships back :meth:`SimulationResult.to_dict` — nothing in
the hot path depends on shared state, which is what lets one driver fan a
parameter study out over every core.

The produced :class:`BatchResult` aggregates per-experiment statistics
(via :func:`repro.simulation.metrics.aggregate_records`) and serializes to
JSON, so batch outputs can be persisted, diffed across runs, and fed to
downstream tooling::

    specs = expand_grid(base, {"environment_params.edge_up_probability":
                               [0.1, 0.3, 1.0]})
    batch = BatchRunner(max_workers=4).run(specs)
    path.write_text(batch.to_json())

Single runs inside each worker are byte-identical to calling
``spec.run(seed)`` in-process: the runner adds distribution, never
different semantics.
"""

from __future__ import annotations

import json
import pathlib
import traceback
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from ..core.durable import atomic_write_text, quarantine
from ..core.errors import SpecificationError
from .checkpoint import load_newest_verified
from .metrics import (
    RunStatistics,
    aggregate_records,
    format_table,
    statistics_from_payloads,
)
from .probes import StatsProbe
from .result import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from ..experiment import ExperimentSpec

__all__ = ["BatchItem", "BatchResult", "BatchRunner", "run_callables"]

#: Executor backends the runner knows how to drive.
BACKENDS = ("process", "thread", "serial")

#: Name of the batch manifest written into a checkpoint directory.
MANIFEST_NAME = "manifest.json"

#: Identifies batch manifests (the ``format`` key of the JSON object).
MANIFEST_FORMAT = "repro-batch-manifest"


def _execute_payload(payload: tuple[dict, int]) -> dict:
    """Run one (spec dict, seed) work unit — the function shipped to workers.

    Module-level so it pickles; imports lazily so a worker process only
    pays for what it runs (and so this module never participates in an
    import cycle with :mod:`repro.experiment`).
    """
    spec_data, seed = payload
    from ..experiment import ExperimentSpec

    spec = ExperimentSpec.from_dict(spec_data)
    return spec.run(seed).to_dict()


def _execute_durable_payload(payload: tuple[dict, int, str]) -> dict:
    """Run one fault-tolerant work unit (its spec carries a checkpoint probe).

    Idempotent by construction, which is the whole resume story:

    * a persisted ``result.json`` means the unit already completed — load
      and return it, byte for byte (resume skips completed units);
    * otherwise, the newest engine checkpoint that *verifies* (stamp +
      parse; see
      :func:`~repro.simulation.checkpoint.load_newest_verified`) means
      the unit was in flight when the batch died — restore and finish it
      (the result is byte-identical to an uninterrupted run of the
      unit), with anything corrupt quarantined along the way;
    * otherwise, run the unit from the start.

    The completed result is persisted atomically before it is returned,
    so a retry or a batch resume can always trust what it finds — and a
    result file that stopped parsing is quarantined and the unit re-run,
    never served.
    """
    spec_data, seed, unit_dir_text = payload
    from ..experiment import ExperimentSpec

    unit_dir = pathlib.Path(unit_dir_text)
    result_path = unit_dir / "result.json"
    if result_path.exists():
        try:
            return json.loads(result_path.read_text())
        except (OSError, ValueError) as error:
            quarantine(result_path, f"corrupt persisted unit result: {error}")

    spec = ExperimentSpec.from_dict(spec_data)
    checkpoint = load_newest_verified(unit_dir / "engine")
    if checkpoint is not None:
        result = spec.resume(checkpoint)
    else:
        result = spec.run(seed)
    data = result.to_dict()
    atomic_write_text(result_path, json.dumps(data))
    return data


@dataclass(frozen=True)
class BatchItem:
    """Outcome of one (experiment, seed) work unit."""

    label: str
    seed: int
    spec: dict
    result: dict | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the run completed (converged or not) without raising."""
        return self.error is None

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "seed": self.seed,
            "spec": self.spec,
            "result": self.result,
            "error": self.error,
        }


class BatchResult:
    """All outcomes of one batch, with aggregation and serialization."""

    def __init__(self, items: Sequence[BatchItem]):
        self.items = list(items)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def labels(self) -> list[str]:
        """Experiment labels in first-seen order."""
        seen: dict[str, None] = {}
        for item in self.items:
            seen.setdefault(item.label, None)
        return list(seen)

    def results_for(self, label: str) -> list[dict]:
        """The serialized results of every completed run of one experiment."""
        return [
            item.result
            for item in self.items
            if item.label == label and item.result is not None
        ]

    def failures(self) -> list[BatchItem]:
        """Work units that raised instead of completing."""
        return [item for item in self.items if not item.ok]

    def completed(self) -> list[BatchItem]:
        """Work units that finished (graceful degradation keeps these)."""
        return [item for item in self.items if item.ok]

    def failure_records(self) -> list[dict]:
        """Per-unit failure summaries — the degradation report a partial
        batch ships alongside its completed results."""
        return [
            {"label": item.label, "seed": item.seed, "error": item.error}
            for item in self.failures()
        ]

    def statistics(self) -> dict[str, RunStatistics]:
        """Per-experiment summary statistics over the completed runs."""
        return {
            label: aggregate_records(self.results_for(label))
            for label in self.labels()
        }

    def probe_payloads(self, label: str) -> dict[str, list]:
        """Probe payloads of one experiment's completed runs, merged by
        probe name (one payload per run, in item order).

        Workers construct their own probe instances and ship payloads back
        inside the serialized result, so this is how streaming
        observability crosses the process boundary: a fanned-out sweep's
        online temporal verdicts or running statistics are collected here
        without any shared state.
        """
        merged: dict[str, list] = {}
        for record in self.results_for(label):
            for name, payload in (record.get("probes") or {}).items():
                merged.setdefault(name, []).append(payload)
        return merged

    def probe_statistics(self, label: str) -> RunStatistics:
        """Merge ``stats``-probe payloads of one experiment into a single
        :class:`RunStatistics` (see
        :func:`~repro.simulation.metrics.statistics_from_payloads`)."""
        payloads = self.probe_payloads(label).get(StatsProbe.name, [])
        return statistics_from_payloads(payloads)

    def summary_table(self) -> str:
        """An aligned text table of per-experiment statistics."""
        rows = []
        for label, stats in self.statistics().items():
            rows.append(
                [
                    label,
                    stats.runs,
                    f"{stats.convergence_rate:.2f}",
                    stats.median_rounds,
                    f"{stats.correctness_rate:.2f}",
                ]
            )
        return format_table(
            ["experiment", "runs", "conv. rate", "median rounds", "correct"], rows
        )

    def to_dict(self) -> dict:
        return {"items": [item.to_dict() for item in self.items]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatchResult":
        return cls([BatchItem(**item) for item in data["items"]])

    @classmethod
    def from_json(cls, text: str) -> "BatchResult":
        return cls.from_dict(json.loads(text))


class BatchRunner:
    """Execute many experiment specs across a worker pool.

    Parameters
    ----------
    max_workers:
        Pool size; None lets :mod:`concurrent.futures` pick (one worker
        per core for processes).
    backend:
        ``"process"`` (default — true parallelism, results cross process
        boundaries as dictionaries), ``"thread"`` (parallel I/O, shared
        interpreter) or ``"serial"`` (in-process, deterministic ordering,
        no pool — the debugging mode).
    retries:
        How many times a failed work unit is re-attempted before its
        failure is recorded (default 0 — fail on first error, the classic
        behaviour).  With a checkpoint directory, a retried unit restores
        from its latest engine checkpoint instead of starting over.
    retry_backoff:
        Base delay (seconds) of the exponential per-unit backoff between
        retry attempts, with deterministic jitter (default 0.0 — retry
        immediately).  A transient failure shared by many units — a full
        disk, an overloaded host — deserves breathing room before the
        whole pool hammers it again.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        backend: str = "process",
        retries: int = 0,
        retry_backoff: float = 0.0,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.max_workers = max_workers
        self.backend = backend
        self.retries = retries
        self.retry_backoff = float(retry_backoff)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        specs: "ExperimentSpec | Iterable[ExperimentSpec]",
        checkpoint_dir: str | pathlib.Path | None = None,
        checkpoint_every: int = 100,
        durable_probes: Callable[
            ["ExperimentSpec", int, pathlib.Path], Sequence
        ] | None = None,
    ) -> BatchResult:
        """Run every (spec, seed) pair; one item per pair, in declaration order.

        A raising work unit records its traceback in the corresponding
        :class:`BatchItem` instead of aborting the batch — a 200-point
        sweep should not lose 199 results to one bad configuration.

        With ``checkpoint_dir`` the batch becomes *durable*: each unit
        gets a private subdirectory holding rolling engine checkpoints
        (written by an injected
        :class:`~repro.simulation.probes.CheckpointProbe` every
        ``checkpoint_every`` rounds) and its persisted result, and the
        directory gains a manifest describing the whole batch.  If the
        process dies mid-sweep, :meth:`resume` on the same directory
        completes the batch: finished units are loaded from their
        persisted results, in-flight units restore from their latest
        checkpoint, and the merged :class:`BatchResult` is identical to
        what the uninterrupted batch would have produced.

        ``durable_probes`` customizes what a durable unit's spec carries:
        called as ``(spec, seed, unit_dir)``, it returns the declarative
        probe entries appended to the spec (replacing the default single
        checkpoint-probe entry).  The experiment service uses it to add
        its live event stream and to silence the checkpoint payload; the
        returned entries are recorded in the manifest, so :meth:`resume`
        rebuilds the exact same pipeline.
        """
        from ..experiment import ExperimentSpec

        if isinstance(specs, ExperimentSpec):
            specs = [specs]
        units: list[tuple[str, dict, int, str | None]] = []
        base = None if checkpoint_dir is None else pathlib.Path(checkpoint_dir)
        for spec in specs:
            spec.validate()
            if base is None:
                data = spec.to_dict()
                for seed in spec.seeds:
                    units.append((spec.label, data, seed, None))
                continue
            for seed in spec.seeds:
                unit_dir = base / f"unit-{len(units):04d}"
                if durable_probes is None:
                    entries: list = [
                        {
                            "probe": "checkpoint",
                            "every": checkpoint_every,
                            "directory": str(unit_dir / "engine"),
                        }
                    ]
                else:
                    entries = list(durable_probes(spec, seed, unit_dir))
                durable = spec.with_updates(
                    {"probes": list(spec.probes) + entries}
                )
                units.append((spec.label, durable.to_dict(), seed, str(unit_dir)))

        if base is not None:
            self._write_manifest(base, units, checkpoint_every)
        return self._execute_units(units)

    def resume(self, checkpoint_dir: str | pathlib.Path) -> BatchResult:
        """Finish an interrupted durable batch from its checkpoint directory.

        Re-executes the manifest's units through the same idempotent path
        as :meth:`run`: completed units return their persisted results
        untouched, interrupted units restore from their latest engine
        checkpoint (or start over if they died before the first one), and
        the merged result equals the uninterrupted batch's.
        """
        base = pathlib.Path(checkpoint_dir)
        manifest_path = base / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except OSError as error:
            raise SpecificationError(
                f"cannot resume batch from {base}: {error}"
            ) from error
        if manifest.get("format") != MANIFEST_FORMAT:
            raise SpecificationError(
                f"{manifest_path} is not a batch manifest "
                f"(format {manifest.get('format')!r})"
            )
        units = [
            (unit["label"], unit["spec"], unit["seed"], unit["unit_dir"])
            for unit in manifest["units"]
        ]
        return self._execute_units(units)

    def run_grid(
        self,
        base: "ExperimentSpec",
        grid: Mapping[str, Sequence[Any]],
        checkpoint_dir: str | pathlib.Path | None = None,
        checkpoint_every: int = 100,
    ) -> BatchResult:
        """Expand ``grid`` against ``base`` (see
        :func:`repro.experiment.expand_grid`) and run the whole sweep."""
        from ..experiment import expand_grid

        return self.run(
            expand_grid(base, grid),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )

    # -- internals -------------------------------------------------------------

    def _execute_units(
        self, units: Sequence[tuple[str, dict, int, str | None]]
    ) -> BatchResult:
        payloads = []
        durable = False
        for _, data, seed, unit_dir in units:
            if unit_dir is None:
                payloads.append((data, seed))
            else:
                durable = True
                payloads.append((data, seed, unit_dir))
        fn = _execute_durable_payload if durable else _execute_payload
        outcomes = self._map(fn, payloads)

        items = []
        for (label, data, seed, _), (result, error) in zip(units, outcomes):
            items.append(
                BatchItem(label=label, seed=seed, spec=data, result=result, error=error)
            )
        return BatchResult(items)

    @staticmethod
    def _write_manifest(
        base: pathlib.Path,
        units: Sequence[tuple[str, dict, int, str | None]],
        checkpoint_every: int,
    ) -> None:
        base.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format": MANIFEST_FORMAT,
            "checkpoint_every": checkpoint_every,
            "units": [
                {
                    "index": index,
                    "label": label,
                    "seed": seed,
                    "spec": data,
                    "unit_dir": unit_dir,
                }
                for index, (label, data, seed, unit_dir) in enumerate(units)
            ],
        }
        path = base / MANIFEST_NAME
        if path.exists():
            # The durable workers trust whatever persisted state they find
            # in their unit directories, so pointing a *different* batch
            # at a used directory would silently serve the old batch's
            # results.  The same batch is fine — run() on its own
            # directory is resume().
            existing = json.loads(path.read_text())
            if existing != manifest:
                raise SpecificationError(
                    f"{base} already holds a different batch (its manifest "
                    "does not match these specs); resume() that batch, or "
                    "use a fresh checkpoint directory"
                )
            return
        atomic_write_text(path, json.dumps(manifest, indent=2))

    def _map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> list[tuple[Any, str | None]]:
        """Apply ``fn`` to every payload, capturing per-unit failures."""
        policy = self._retry_policy()
        if self.backend == "serial" or len(payloads) <= 1:
            return [_guard(fn, payload, self.retries, policy) for payload in payloads]
        with self._executor() as pool:
            futures = [
                pool.submit(_guard, fn, payload, self.retries, policy)
                for payload in payloads
            ]
            return [future.result() for future in futures]

    def _retry_policy(self):
        """The between-attempt backoff policy (None = classic immediate
        retry).  Imported lazily: the faults layer is optional machinery
        for the hot path, and a plain frozen dataclass, so it pickles to
        process workers like any other payload."""
        if self.retry_backoff <= 0.0:
            return None
        from ..faults.retry import RetryPolicy

        return RetryPolicy(
            retries=self.retries,
            base_delay=self.retry_backoff,
            max_delay=max(self.retry_backoff * 8, self.retry_backoff),
        )

    def _executor(self) -> Executor:
        if self.backend == "process":
            return ProcessPoolExecutor(max_workers=self.max_workers)
        return ThreadPoolExecutor(max_workers=self.max_workers)


def _guard(
    fn: Callable[[Any], Any], payload: Any, retries: int = 0, policy=None
) -> tuple[Any, str | None]:
    """Run one unit, converting an exception into a recorded traceback.

    ``retries`` extra attempts run before the failure is recorded; the
    traceback kept is the last attempt's.  ``policy`` (a
    :class:`~repro.faults.retry.RetryPolicy`) spaces the attempts with
    exponential, deterministically-jittered backoff, keyed per unit so
    concurrent retriers never thunder in step.
    """
    error = None
    for attempt in range(retries + 1):
        if attempt and policy is not None:
            policy.sleep_before(attempt, key=_payload_key(payload))
        try:
            return fn(payload), None
        except Exception:  # noqa: BLE001 - any worker failure becomes data
            error = traceback.format_exc()
    return None, error


def _payload_key(payload: Any) -> str:
    """A stable per-unit jitter key: the seed plus (when durable) the
    unit directory — unique within a batch, identical across replays."""
    if isinstance(payload, tuple) and len(payload) == 3:
        return f"{payload[1]}:{payload[2]}"
    if isinstance(payload, tuple) and len(payload) == 2:
        return str(payload[1])
    return ""


def run_callables(
    jobs: Sequence[Callable[[], SimulationResult]],
    max_workers: int | None = None,
    backend: str = "serial",
    return_exceptions: bool = False,
) -> list[SimulationResult]:
    """Execute in-process simulation thunks and return their results in order.

    This is the non-serializable little sibling of :class:`BatchRunner`:
    the legacy ``run_repeated`` / ``sweep`` helpers wrap live algorithm
    and environment objects in closures and delegate the execution loop
    here.  Closures cannot cross process boundaries, so the backends are
    ``"serial"`` (default) and ``"thread"``.

    Failure handling mirrors :class:`BatchRunner`'s per-unit capture: each
    job's outcome is recorded independently, so one raising job never
    discards the others' completed work.  With ``return_exceptions`` the
    outcomes come back as a mixed list (results and exception objects, in
    job order).  Without it, the first failing job's exception is raised —
    but only after every job has finished.  The one behavioural difference
    that remains between the backends: ``"serial"`` stops at the first
    failure (later jobs never start), while ``"thread"`` always runs every
    job to completion before reporting the earliest failure.
    """
    if backend not in ("serial", "thread"):
        raise ValueError(f"run_callables backend must be serial or thread, got {backend!r}")
    if backend == "serial" or len(jobs) <= 1:
        if not return_exceptions:
            return [job() for job in jobs]
        outcomes = [_call_guarded(job) for job in jobs]
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(_call_guarded, job) for job in jobs]
            outcomes = [future.result() for future in futures]

    if return_exceptions:
        return [result if error is None else error for result, error in outcomes]
    for _, error in outcomes:
        if error is not None:
            raise error
    return [result for result, _ in outcomes]


def _call_guarded(
    job: Callable[[], SimulationResult]
) -> tuple[SimulationResult | None, Exception | None]:
    """Run one thunk, capturing its exception instead of propagating."""
    try:
        return job(), None
    except Exception as error:  # noqa: BLE001 - reported to the caller
        return None, error
