"""Simulation of self-similar algorithms under dynamic environments."""

from .batch import BatchItem, BatchResult, BatchRunner, run_callables
from .engine import Simulator
from .messaging import MergeMessagePassingSimulator
from .metrics import (
    RunStatistics,
    aggregate,
    aggregate_records,
    format_table,
    statistics_from_payloads,
)
from .probes import (
    ConvergenceProbe,
    JSONLSink,
    ObjectiveProbe,
    StatsProbe,
    TemporalProbe,
    TemporalProperty,
)
from .protocol import Engine, HistoryProbe, Probe, RoundRecord, run_engine
from .result import SimulationResult
from .runner import SweepPoint, run_repeated, sweep

__all__ = [
    "BatchItem",
    "BatchResult",
    "BatchRunner",
    "run_callables",
    "Engine",
    "Probe",
    "HistoryProbe",
    "ObjectiveProbe",
    "ConvergenceProbe",
    "TemporalProbe",
    "TemporalProperty",
    "StatsProbe",
    "JSONLSink",
    "run_engine",
    "RoundRecord",
    "Simulator",
    "MergeMessagePassingSimulator",
    "RunStatistics",
    "aggregate",
    "aggregate_records",
    "statistics_from_payloads",
    "format_table",
    "SimulationResult",
    "SweepPoint",
    "run_repeated",
    "sweep",
]
