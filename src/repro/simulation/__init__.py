"""Simulation of self-similar algorithms under dynamic environments."""

from .batch import BatchItem, BatchResult, BatchRunner, run_callables
from .checkpoint import (
    DriverState,
    EngineCheckpoint,
    RoundState,
    RunCheckpoint,
    resume_run,
)
from .array_engine import ArrayEngine, ArrayRoundRecord
from .engine import Simulator
from .messaging import MergeMessagePassingSimulator
from .metrics import (
    RunStatistics,
    aggregate,
    aggregate_records,
    format_table,
    statistics_from_payloads,
)
from .probes import (
    CheckpointProbe,
    ConvergenceProbe,
    JSONLSink,
    ObjectiveProbe,
    StatsProbe,
    TemporalProbe,
    TemporalProperty,
)
from .protocol import Engine, HistoryProbe, Probe, RoundRecord, RunContext, run_engine
from .result import SimulationResult
from .runner import SweepPoint, run_repeated, sweep

__all__ = [
    "BatchItem",
    "BatchResult",
    "BatchRunner",
    "run_callables",
    "CheckpointProbe",
    "DriverState",
    "EngineCheckpoint",
    "RoundState",
    "RunCheckpoint",
    "RunContext",
    "resume_run",
    "Engine",
    "Probe",
    "HistoryProbe",
    "ObjectiveProbe",
    "ConvergenceProbe",
    "TemporalProbe",
    "TemporalProperty",
    "StatsProbe",
    "JSONLSink",
    "run_engine",
    "RoundRecord",
    "Simulator",
    "ArrayEngine",
    "ArrayRoundRecord",
    "MergeMessagePassingSimulator",
    "RunStatistics",
    "aggregate",
    "aggregate_records",
    "statistics_from_payloads",
    "format_table",
    "SimulationResult",
    "SweepPoint",
    "run_repeated",
    "sweep",
]
