"""Simulation of self-similar algorithms under dynamic environments."""

from .batch import BatchItem, BatchResult, BatchRunner, run_callables
from .engine import RoundRecord, Simulator
from .messaging import MergeMessagePassingSimulator
from .metrics import RunStatistics, aggregate, aggregate_records, format_table
from .result import SimulationResult
from .runner import SweepPoint, run_repeated, sweep

__all__ = [
    "BatchItem",
    "BatchResult",
    "BatchRunner",
    "run_callables",
    "RoundRecord",
    "Simulator",
    "MergeMessagePassingSimulator",
    "RunStatistics",
    "aggregate",
    "aggregate_records",
    "format_table",
    "SimulationResult",
    "SweepPoint",
    "run_repeated",
    "sweep",
]
