"""Simulation of self-similar algorithms under dynamic environments."""

from .engine import Simulator
from .messaging import MergeMessagePassingSimulator
from .metrics import RunStatistics, aggregate, format_table
from .result import SimulationResult
from .runner import SweepPoint, run_repeated, sweep

__all__ = [
    "Simulator",
    "MergeMessagePassingSimulator",
    "RunStatistics",
    "aggregate",
    "format_table",
    "SimulationResult",
    "SweepPoint",
    "run_repeated",
    "sweep",
]
