"""Aggregate metrics over repeated simulation runs.

Benchmarks repeat every configuration over several seeds; this module
provides the small statistics toolkit used to summarise those repetitions
(mean / median / percentiles of convergence rounds, convergence rate) and
to format sweep results as the aligned text tables the benchmark harness
prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .result import SimulationResult

__all__ = [
    "RunStatistics",
    "aggregate",
    "aggregate_records",
    "statistics_from_payloads",
    "format_table",
]


@dataclass(frozen=True)
class RunStatistics:
    """Summary statistics of a batch of simulation runs."""

    runs: int
    converged_runs: int
    mean_rounds: float
    median_rounds: float
    p90_rounds: float
    max_rounds: float
    mean_group_steps: float
    mean_improving_steps: float
    correctness_rate: float

    @property
    def convergence_rate(self) -> float:
        """Fraction of runs that converged."""
        if self.runs == 0:
            return 0.0
        return self.converged_runs / self.runs


def _percentile(values: Sequence[float], fraction: float) -> float:
    if not values:
        return math.inf
    index = min(len(values) - 1, max(0, math.ceil(fraction * len(values)) - 1))
    return float(values[index])


def _build_statistics(
    runs: int,
    convergence_rounds: Sequence[int],
    total_group_steps: float,
    total_improving_steps: float,
    correct_runs: int,
) -> RunStatistics:
    """Assemble a :class:`RunStatistics` from accumulated counts.

    Convergence-round statistics are computed over the converged runs only
    (a non-converged run has no convergence round); when no run converged
    they are reported as ``inf`` so that comparisons in benchmark tables
    stay meaningful.
    """
    rounds = sorted(convergence_rounds)
    return RunStatistics(
        runs=runs,
        converged_runs=len(rounds),
        mean_rounds=(sum(rounds) / len(rounds)) if rounds else math.inf,
        median_rounds=_percentile(rounds, 0.5),
        p90_rounds=_percentile(rounds, 0.9),
        max_rounds=float(rounds[-1]) if rounds else math.inf,
        mean_group_steps=(total_group_steps / runs) if runs else 0.0,
        mean_improving_steps=(total_improving_steps / runs) if runs else 0.0,
        correctness_rate=(correct_runs / runs) if runs else 0.0,
    )


def aggregate(results: Iterable[SimulationResult]) -> RunStatistics:
    """Summarise a batch of runs (see :func:`_build_statistics` for the
    conventions on non-converged runs)."""
    results = list(results)
    return _build_statistics(
        runs=len(results),
        convergence_rounds=[r.convergence_round for r in results if r.converged],
        total_group_steps=sum(r.group_steps for r in results),
        total_improving_steps=sum(r.improving_steps for r in results),
        correct_runs=sum(1 for r in results if r.correct),
    )


def statistics_from_payloads(payloads: Iterable[Mapping]) -> RunStatistics:
    """Merge :class:`~repro.simulation.probes.StatsProbe` payloads.

    Each payload carries the raw accumulation material (run counts,
    convergence rounds, step totals), so statistics computed *online*
    during streaming runs — including ``history="none"`` runs that never
    build a :class:`SimulationResult` trace — and statistics merged across
    :class:`~repro.simulation.batch.BatchRunner` workers go through the
    same construction as in-process :func:`aggregate`.
    """
    runs = 0
    convergence_rounds: list[int] = []
    total_group_steps = 0.0
    total_improving_steps = 0.0
    correct_runs = 0
    for payload in payloads:
        runs += payload["runs"]
        convergence_rounds.extend(payload["convergence_rounds"])
        total_group_steps += payload["group_steps"]
        total_improving_steps += payload["improving_steps"]
        correct_runs += payload["correct_runs"]
    return _build_statistics(
        runs=runs,
        convergence_rounds=convergence_rounds,
        total_group_steps=total_group_steps,
        total_improving_steps=total_improving_steps,
        correct_runs=correct_runs,
    )


def aggregate_records(records: Iterable[dict]) -> RunStatistics:
    """Summarise serialized results (:meth:`SimulationResult.to_dict` dicts).

    Batch runs ship results across process boundaries as dictionaries;
    this rehydrates them just enough for :func:`aggregate`, so in-process
    and distributed experiments report through one statistics path.
    """
    return aggregate(SimulationResult.from_dict(record) for record in records)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Format rows as an aligned, monospace text table.

    Benchmarks print these tables so that the series the paper's
    evaluation would show (who wins, how convergence scales) are visible
    directly in the benchmark output file.
    """
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in text_rows))
        if text_rows
        else len(headers[column])
        for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if math.isinf(cell):
            return "inf"
        return f"{cell:.2f}"
    return str(cell)
