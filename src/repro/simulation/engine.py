"""The round-based simulation engine.

The engine executes the paper's transition relation directly:

* at the start of every round the **environment** takes a transition — the
  concrete :class:`~repro.environment.base.Environment` produces the next
  environment state ``G`` (which agents are enabled, which links are
  available);
* then the **agents** take a transition — a
  :class:`~repro.agents.scheduler.Scheduler` picks a partition of the
  enabled agents into groups compatible with ``G``, and every scheduled
  group executes the algorithm's group step.  Unscheduled agents and
  disabled agents stutter, which the reflexivity of ``R`` always allows.

Every group step is validated against the optimization relation ``D``
(conserve ``f``, decrease ``h``), so the conservation law
``f(S) = f(S(0))`` is an enforced run-time invariant, not an assumption.
The engine records a full trace of agent-state multisets so that the
temporal-logic specifications (3)–(5) can be checked after the fact.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from ..agents.agent import Agent
from ..agents.group import Group
from ..agents.scheduler import MaximalGroupsScheduler, Scheduler
from ..core.algorithm import SelfSimilarAlgorithm
from ..core.errors import SimulationError
from ..core.multiset import Multiset
from ..core.relation import StepKind
from ..environment.base import Environment
from ..temporal.trace import Trace
from .result import SimulationResult

__all__ = ["Simulator"]


class Simulator:
    """Simulate one self-similar algorithm under one environment.

    Parameters
    ----------
    algorithm:
        The :class:`SelfSimilarAlgorithm` to execute.
    environment:
        The environment model producing per-round availability.
    initial_values:
        The problem inputs, one per agent (sensor readings, array entries,
        coordinates, ...).  The number of agents is taken from the
        environment's topology and must match.
    scheduler:
        How groups are formed each round; defaults to
        :class:`MaximalGroupsScheduler`.
    seed:
        Seed of the run's random generator (drives the environment, the
        scheduler and any randomness in the group step rule).
    record_trace:
        When False, only the latest state is kept; long benchmark runs use
        this to keep memory flat.
    """

    def __init__(
        self,
        algorithm: SelfSimilarAlgorithm,
        environment: Environment,
        initial_values: Sequence[Any],
        scheduler: Scheduler | None = None,
        seed: int | None = None,
        record_trace: bool = True,
    ):
        if len(initial_values) != environment.num_agents:
            raise SimulationError(
                f"{len(initial_values)} initial values supplied for "
                f"{environment.num_agents} agents"
            )
        self.algorithm = algorithm
        self.environment = environment
        self.scheduler = scheduler or MaximalGroupsScheduler()
        self.seed = seed
        self.record_trace = record_trace
        self.initial_values = list(initial_values)

        self._rng = random.Random(seed)
        initial_states = algorithm.initial_states(self.initial_values)
        self.agents: list[Agent] = [
            Agent(agent_id=index, state=state)
            for index, state in enumerate(initial_states)
        ]
        self._initial_multiset = Multiset(initial_states)
        self._target = algorithm.target(initial_states)

    # -- state access ----------------------------------------------------------

    def current_states(self) -> list:
        """Return the current agent states, indexed by agent id."""
        return [agent.state for agent in self.agents]

    def current_multiset(self) -> Multiset:
        """Return the current agent states as a multiset."""
        return Multiset(self.current_states())

    @property
    def target(self) -> Multiset:
        """The multiset ``S* = f(S(0))`` the agents must reach and keep."""
        return self._target

    def has_converged(self) -> bool:
        """Return True when the agents are currently at ``S*``."""
        return self.current_multiset() == self._target

    # -- execution --------------------------------------------------------------

    def reset(self) -> None:
        """Restore the initial configuration (same seed, same initial values)."""
        self._rng = random.Random(self.seed)
        for agent in self.agents:
            agent.reset()
        self.environment.reset()

    def run(
        self,
        max_rounds: int = 1000,
        stop_at_convergence: bool = True,
        extra_rounds_after_convergence: int = 0,
    ) -> SimulationResult:
        """Run the simulation and return a :class:`SimulationResult`.

        Parameters
        ----------
        max_rounds:
            Upper bound on the number of rounds simulated.
        stop_at_convergence:
            When True (default), the run stops as soon as the agents reach
            the target multiset ``S*`` (plus ``extra_rounds_after_convergence``
            additional rounds, useful to confirm stability of the goal
            state in tests).
        extra_rounds_after_convergence:
            Rounds to keep simulating after convergence when
            ``stop_at_convergence`` is set.
        """
        trace: Trace[Multiset] = Trace([self.current_multiset()])
        objective_trajectory = [self.algorithm.objective(self.current_multiset())]

        group_steps = 0
        improving_steps = 0
        stutter_steps = 0
        invalid_steps = 0
        largest_group = 0
        convergence_round: int | None = 0 if self.has_converged() else None
        rounds_after_convergence = 0
        rounds_executed = 0

        for round_index in range(max_rounds):
            if convergence_round is not None and stop_at_convergence:
                if rounds_after_convergence >= extra_rounds_after_convergence:
                    break
                rounds_after_convergence += 1

            rounds_executed += 1
            environment_state = self.environment.advance(round_index, self._rng)
            groups = self.scheduler.schedule(environment_state, self._rng)
            _validate_partition(groups, self.environment.num_agents)

            for group in groups:
                if len(group) == 0:
                    continue
                largest_group = max(largest_group, len(group))
                states_before = group.states_of(self.agents)
                states_after, judgement = self.algorithm.apply_group_step(
                    states_before, self._rng
                )
                group_steps += 1
                if judgement.kind is StepKind.IMPROVEMENT:
                    improving_steps += 1
                    group.install(self.agents, states_after)
                elif judgement.kind is StepKind.STUTTER:
                    stutter_steps += 1
                else:
                    # Only reachable when the algorithm's enforcement is off:
                    # record the invalid step and apply it anyway, so that
                    # benchmarks can observe the consequences of violating
                    # the methodology (Figure 1 / direct second-smallest).
                    invalid_steps += 1
                    group.install(self.agents, states_after)

            if self.record_trace:
                trace.append(self.current_multiset())
            objective_trajectory.append(self.algorithm.objective(self.current_multiset()))

            if convergence_round is None and self.has_converged():
                convergence_round = round_index + 1

        converged = convergence_round is not None
        if converged and self.algorithm.enforce:
            # Once at S* = f(S*), every further step is a stutter, so the
            # observed prefix determines the whole computation.
            trace.mark_complete()

        final_states = self.current_states()
        return SimulationResult(
            converged=converged,
            convergence_round=convergence_round,
            rounds_executed=rounds_executed,
            final_states=final_states,
            output=self.algorithm.result(Multiset(final_states)),
            expected_output=self.algorithm.result(self._target),
            trace=trace if self.record_trace else Trace([Multiset(final_states)]),
            objective_trajectory=objective_trajectory,
            group_steps=group_steps,
            improving_steps=improving_steps,
            stutter_steps=stutter_steps,
            invalid_steps=invalid_steps,
            largest_group=largest_group,
            metadata={
                "algorithm": self.algorithm.name,
                "environment": self.environment.describe(),
                "scheduler": self.scheduler.describe(),
                "num_agents": self.environment.num_agents,
                "seed": self.seed,
            },
        )


def _validate_partition(groups: Sequence[Group], num_agents: int) -> None:
    """Ensure scheduled groups are pairwise disjoint and reference real agents."""
    seen: set[int] = set()
    for group in groups:
        for agent_id in group:
            if not 0 <= agent_id < num_agents:
                raise SimulationError(
                    f"scheduler produced agent id {agent_id} outside "
                    f"0..{num_agents - 1}"
                )
            if agent_id in seen:
                raise SimulationError(
                    f"scheduler produced overlapping groups (agent {agent_id} twice)"
                )
            seen.add(agent_id)
