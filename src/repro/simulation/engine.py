"""The round-based simulation engine.

The engine executes the paper's transition relation directly:

* at the start of every round the **environment** takes a transition — the
  concrete :class:`~repro.environment.base.Environment` produces the next
  environment state ``G`` (which agents are enabled, which links are
  available);
* then the **agents** take a transition — a
  :class:`~repro.agents.scheduler.Scheduler` picks a partition of the
  enabled agents into groups compatible with ``G``, and every scheduled
  group executes the algorithm's group step.  Unscheduled agents and
  disabled agents stutter, which the reflexivity of ``R`` always allows.

Every group step is validated against the optimization relation ``D``
(conserve ``f``, decrease ``h``), so the conservation law
``f(S) = f(S(0))`` is an enforced run-time invariant, not an assumption.
The engine records a full trace of agent-state multisets so that the
temporal-logic specifications (3)–(5) can be checked after the fact.

The execution core is the :meth:`Simulator.steps` generator, which yields
one :class:`RoundRecord` per simulated round.  Streaming consumers (live
dashboards, early-stop policies, the declarative experiment layer) iterate
it directly and can pause between rounds — the simulator keeps its
position, so resuming is just pulling the next record.
:meth:`Simulator.run` is a thin driver over the same generator that
accumulates the classic :class:`SimulationResult`.

Round bookkeeping is *incremental* by default: instead of rebuilding the
agent-state multiset and recomputing the objective ``h`` from scratch
every round, the engine folds each round's ``(removed, added)`` state
delta into a maintained :class:`MutableMultiset`, updates ``h`` in
O(|delta|) for objectives that support exact increments, and compares
against the target via an O(1) content fingerprint.  A round in which two
agents moved therefore costs O(2) bookkeeping, not O(n) — matching the
paper's "speed up or slow down depending on the resources available"
story.  Results are byte-identical to full recomputation (enforced by the
parity test suite); ``incremental=False`` selects the full-recompute
reference mode and ``cross_check=True`` validates the maintained state
against it every round.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import chain
from operator import attrgetter
from typing import Any, Callable, Iterator, Sequence

from ..agents.agent import Agent
from ..agents.group import Group
from ..agents.scheduler import MaximalGroupsScheduler, Scheduler
from ..core.algorithm import SelfSimilarAlgorithm
from ..core.errors import SimulationError
from ..core.multiset import Multiset, MutableMultiset
from ..core.relation import STUTTER_JUDGEMENT, StepJudgement, StepKind
from ..environment.base import Environment
from ..temporal.trace import Trace
from .result import SimulationResult

__all__ = ["RoundRecord", "Simulator"]

_group_members = attrgetter("members")


@dataclass(frozen=True)
class RoundRecord:
    """What one simulated round did — the unit of the streaming API.

    Attributes
    ----------
    round_index:
        The round that was executed (0-based, matches the index the
        environment's :meth:`advance` received).
    multiset:
        The agent-state multiset *after* the round, computed exactly once
        per round and shared with the trace.
    objective:
        Value of the objective ``h`` on that multiset.
    converged:
        True when the multiset equals the target ``S* = f(S(0))``.
    groups:
        The non-empty groups the scheduler activated, in execution order.
    judgements:
        The relation ``D``'s verdict for each group step, aligned with
        ``groups``.
    """

    round_index: int
    multiset: Multiset
    objective: float
    converged: bool
    groups: tuple[Group, ...]
    judgements: tuple[StepJudgement, ...]

    @property
    def group_steps(self) -> int:
        """Number of group steps executed this round."""
        return len(self.judgements)

    @property
    def improving_steps(self) -> int:
        """Group steps that strictly decreased the objective."""
        return sum(1 for j in self.judgements if j.kind is StepKind.IMPROVEMENT)

    @property
    def stutter_steps(self) -> int:
        """Group steps that left their group's state unchanged."""
        return sum(1 for j in self.judgements if j.kind is StepKind.STUTTER)

    @property
    def invalid_steps(self) -> int:
        """Steps that violated ``D`` (possible only with enforcement off)."""
        return len(self.judgements) - self.improving_steps - self.stutter_steps

    @property
    def largest_group(self) -> int:
        """Size of the largest group scheduled this round (0 when none)."""
        return max((len(group) for group in self.groups), default=0)


class Simulator:
    """Simulate one self-similar algorithm under one environment.

    Parameters
    ----------
    algorithm:
        The :class:`SelfSimilarAlgorithm` to execute.
    environment:
        The environment model producing per-round availability.
    initial_values:
        The problem inputs, one per agent (sensor readings, array entries,
        coordinates, ...).  The number of agents is taken from the
        environment's topology and must match.
    scheduler:
        How groups are formed each round; defaults to
        :class:`MaximalGroupsScheduler`.
    seed:
        Seed of the run's random generator (drives the environment, the
        scheduler and any randomness in the group step rule).  When None,
        an explicit seed is drawn once and recorded as :attr:`seed`, so
        every run — including "unseeded" ones — is reproducible from its
        result metadata.
    record_trace:
        When False, only the latest state is kept; long benchmark runs use
        this to keep memory flat.
    incremental:
        When True (default), the simulator maintains the round multiset
        and the objective value incrementally: each round folds the
        ``(removed, added)`` state delta reported by the executed group
        steps into a :class:`MutableMultiset`, updates the objective in
        O(|delta|) for objectives that support exact deltas, and checks
        convergence against the target via an O(1) content fingerprint.
        Results are byte-identical to full recomputation.  When False, the
        simulator recomputes everything from the agent states every round
        — the reference behaviour the incremental path is measured and
        cross-checked against.  Note: the incremental path assumes agent
        states change only through executed group steps; code that mutates
        ``Agent.state`` directly between rounds must use
        ``incremental=False`` (or will be caught by ``cross_check``).
    cross_check:
        Debug flag.  When True (and ``incremental``), every round the
        maintained multiset, fingerprint and objective are verified
        against a full recomputation from the agent states, raising
        :class:`SimulationError` on any divergence.
    """

    def __init__(
        self,
        algorithm: SelfSimilarAlgorithm,
        environment: Environment,
        initial_values: Sequence[Any],
        scheduler: Scheduler | None = None,
        seed: int | None = None,
        record_trace: bool = True,
        incremental: bool = True,
        cross_check: bool = False,
    ):
        if len(initial_values) != environment.num_agents:
            raise SimulationError(
                f"{len(initial_values)} initial values supplied for "
                f"{environment.num_agents} agents"
            )
        if seed is None:
            # Draw the effective seed explicitly so the run stays
            # reproducible: the result metadata records this value.
            seed = random.randrange(2**63)
        self.algorithm = algorithm
        self.environment = environment
        self.scheduler = scheduler or MaximalGroupsScheduler()
        self.seed = seed
        self.record_trace = record_trace
        self.incremental = incremental
        self.cross_check = cross_check
        self.initial_values = list(initial_values)

        self._rng = random.Random(seed)
        self._round_index = 0
        initial_states = algorithm.initial_states(self.initial_values)
        self.agents: list[Agent] = [
            Agent(agent_id=index, state=state)
            for index, state in enumerate(initial_states)
        ]
        self._initial_multiset = Multiset(initial_states)
        self._target = algorithm.target(initial_states)
        self._target_size = len(self._target)
        self._target_fingerprint = self._target.fingerprint()
        self._maintained = MutableMultiset(self._initial_multiset)
        # Lazily initialised (first round / run start) so that building a
        # simulator never evaluates the objective.
        self._objective_value: float | None = None

    # -- state access ----------------------------------------------------------

    def current_states(self) -> list:
        """Return the current agent states, indexed by agent id."""
        return [agent.state for agent in self.agents]

    def current_multiset(self) -> Multiset:
        """Return the current agent states as a multiset."""
        return Multiset(self.current_states())

    @property
    def target(self) -> Multiset:
        """The multiset ``S* = f(S(0))`` the agents must reach and keep."""
        return self._target

    @property
    def round_index(self) -> int:
        """Index of the next round :meth:`steps` will execute."""
        return self._round_index

    def has_converged(self) -> bool:
        """Return True when the agents are currently at ``S*``."""
        return self.current_multiset() == self._target

    # -- execution --------------------------------------------------------------

    def reset(self) -> None:
        """Restore the initial configuration (same seed, same initial values)."""
        self._rng = random.Random(self.seed)
        self._round_index = 0
        for agent in self.agents:
            agent.reset()
        self.environment.reset()
        self._maintained = MutableMultiset(self._initial_multiset)
        self._objective_value = None

    def _execute_round(self, round_index: int) -> RoundRecord:
        """Execute one round — one environment transition, one scheduled
        agent transition per group — and record what happened.

        In incremental mode the round's bookkeeping is O(|delta|): the
        state deltas reported by :meth:`Group.install` are folded into the
        maintained multiset, the objective is updated from the same delta,
        and convergence is decided by fingerprint comparison.  In full
        mode everything is recomputed from the agent states, exactly as
        the pre-incremental engine did.
        """
        environment_state = self.environment.advance(round_index, self._rng)
        scheduled = self.scheduler.schedule(environment_state, self._rng)
        _validate_partition(scheduled, self.environment.num_agents)

        incremental = self.incremental
        agents = self.agents
        algorithm = self.algorithm
        rng = self._rng
        # Singleton groups dominate sparse rounds; when the algorithm
        # declares that lone agents always stutter (and draw no
        # randomness), their step-rule calls can be skipped outright.
        skip_singletons = incremental and algorithm.singleton_stutters
        groups: list[Group] = []
        judgements: list[StepJudgement] = []
        removed: list = []
        added: list = []
        clean = True
        try:
            for group in scheduled:
                size = len(group.members)
                if size == 0:
                    continue
                if size == 1 and skip_singletons:
                    groups.append(group)
                    judgements.append(STUTTER_JUDGEMENT)
                    continue
                states_before = group.states_of(agents)
                states_after, judgement = algorithm.apply_group_step(
                    states_before, rng, fast_stutter=incremental
                )
                if judgement.kind is not StepKind.STUTTER:
                    # Valid improvements are installed; invalid steps (only
                    # reachable when the algorithm's enforcement is off) are
                    # recorded and applied anyway, so that benchmarks can
                    # observe the consequences of violating the methodology
                    # (Figure 1 / direct second-smallest).
                    if judgement.kind is not StepKind.IMPROVEMENT:
                        clean = False
                    group_removed, group_added = group.install(agents, states_after)
                    removed.extend(group_removed)
                    added.extend(group_added)
                groups.append(group)
                judgements.append(judgement)
        except BaseException:
            # A mid-round exception (an enforcement violation raised by a
            # later group, say) must not desynchronise the maintained
            # round state: earlier groups already installed their new
            # states.  Fold what was installed, and drop the cached
            # objective value — it describes the pre-round bag and will
            # be recomputed lazily if the caller resumes.
            if incremental and (removed or added):
                self._maintained.apply_delta(removed, added)
                self._objective_value = None
            raise

        if incremental:
            multiset, objective, converged = self._fold_round(removed, added, clean)
        else:
            # Reference path: the round's multiset is recomputed from the
            # agent states and shared by the trace, the objective
            # trajectory and the convergence check.
            multiset = self.current_multiset()
            objective = self.algorithm.objective(multiset)
            converged = multiset == self._target
        return RoundRecord(
            round_index=round_index,
            multiset=multiset,
            objective=objective,
            converged=converged,
            groups=tuple(groups),
            judgements=tuple(judgements),
        )

    def _fold_round(
        self, removed: list, added: list, clean: bool
    ) -> tuple[Multiset, float, bool]:
        """Fold one round's state delta into the maintained round state."""
        maintained = self._maintained
        if self._objective_value is None:
            # First use: price the objective once, on the pre-delta bag.
            self._objective_value = self.algorithm.objective(maintained.snapshot())
        if removed or added:
            try:
                maintained.apply_delta(removed, added)
            except KeyError as error:
                raise SimulationError(
                    "incremental round state out of sync with the agent "
                    "states (were agent states mutated outside a group "
                    f"step?): {error.args[0]}"
                ) from error

        if clean and self.algorithm.objective.supports_delta:
            multiset = maintained.snapshot()
            objective = self.algorithm.objective_delta(
                self._objective_value, multiset, removed, added
            )
        else:
            # No exact delta available (hull/circle objectives), or the
            # round contained steps outside ``D`` whose effect on ``h`` is
            # not delta-reconstructible (enforcement off): recompute in
            # full, on a freshly built multiset so that order-sensitive
            # float summations match the reference path bit for bit.
            multiset = Multiset(self.current_states())
            objective = self.algorithm.objective(multiset)
        self._objective_value = objective

        # The maintained bag's fingerprint is O(1); on fallback rounds the
        # fresh multiset's would cost an O(distinct) walk just to
        # pre-screen the same content.
        converged = (
            len(multiset) == self._target_size
            and maintained.fingerprint() == self._target_fingerprint
            and multiset == self._target
        )
        if self.cross_check:
            self._verify_maintained_state(multiset, objective)
        return multiset, objective, converged

    def _verify_maintained_state(self, multiset: Multiset, objective: float) -> None:
        """Debug cross-check: maintained state must equal full recomputation.

        Always validates the *maintained* bag against the agent states —
        on fallback rounds the round's ``multiset`` is itself a fresh
        rebuild, so comparing only it would never catch maintained-state
        drift (e.g. external ``Agent.state`` mutation).
        """
        full = self.current_multiset()
        maintained = self._maintained.snapshot()
        if full != maintained or full != multiset:
            raise SimulationError(
                "incremental multiset diverged from the agent states "
                "(were agent states mutated outside a group step?): "
                f"maintained {maintained!r} vs actual {full!r}"
            )
        if full.fingerprint() != self._maintained.fingerprint():
            raise SimulationError(
                "incremental fingerprint diverged from recomputed fingerprint "
                f"({self._maintained.fingerprint():#x} vs {full.fingerprint():#x})"
            )
        full_objective = self.algorithm.objective(full)
        if full_objective != objective:
            raise SimulationError(
                "incremental objective diverged from full recomputation "
                f"({objective!r} vs {full_objective!r})"
            )

    def steps(self, max_rounds: int | None = None) -> Iterator[RoundRecord]:
        """Stream the simulation, one :class:`RoundRecord` per round.

        The generator executes rounds lazily: nothing runs until a record
        is pulled, and abandoning the iterator pauses the simulation with
        no loose state — calling :meth:`steps` again resumes from the next
        round.  ``max_rounds`` bounds how many rounds *this* iterator will
        execute; None streams indefinitely (the caller decides when to
        stop, e.g. on :attr:`RoundRecord.converged`).
        """
        executed = 0
        while max_rounds is None or executed < max_rounds:
            record = self._execute_round(self._round_index)
            self._round_index += 1
            executed += 1
            yield record

    def run(
        self,
        max_rounds: int = 1000,
        stop_at_convergence: bool = True,
        extra_rounds_after_convergence: int = 0,
        on_round: Callable[[RoundRecord], bool | None] | None = None,
    ) -> SimulationResult:
        """Run the simulation and return a :class:`SimulationResult`.

        This is a thin driver over :meth:`steps`: it pulls round records,
        accumulates the trace, objective trajectory and step counters, and
        applies the stopping policy.

        Parameters
        ----------
        max_rounds:
            Upper bound on the number of rounds simulated.
        stop_at_convergence:
            When True (default), the run stops as soon as the agents reach
            the target multiset ``S*`` (plus ``extra_rounds_after_convergence``
            additional rounds, useful to confirm stability of the goal
            state in tests).
        extra_rounds_after_convergence:
            Rounds to keep simulating after convergence when
            ``stop_at_convergence`` is set.
        on_round:
            Optional streaming callback invoked with every
            :class:`RoundRecord`; returning True stops the run early
            (an application-defined early-stop policy).
        """
        if self.incremental:
            # The maintained bag already holds the current states; its
            # cached snapshot also seeds the objective value so the first
            # round starts from a known h instead of recomputing.
            initial_multiset = self._maintained.snapshot()
            if self._objective_value is None:
                self._objective_value = self.algorithm.objective(initial_multiset)
            initial_objective = self._objective_value
        else:
            initial_multiset = self.current_multiset()
            initial_objective = self.algorithm.objective(initial_multiset)
        trace: Trace[Multiset] = Trace([initial_multiset])
        objective_trajectory = [initial_objective]

        group_steps = 0
        improving_steps = 0
        stutter_steps = 0
        invalid_steps = 0
        largest_group = 0
        convergence_round: int | None = (
            0 if initial_multiset == self._target else None
        )
        rounds_after_convergence = 0
        rounds_executed = 0
        stopped_by_callback = False

        records = self.steps()
        for round_index in range(max_rounds):
            if convergence_round is not None and stop_at_convergence:
                if rounds_after_convergence >= extra_rounds_after_convergence:
                    break
                rounds_after_convergence += 1

            record = next(records)
            rounds_executed += 1
            group_steps += record.group_steps
            improving_steps += record.improving_steps
            stutter_steps += record.stutter_steps
            invalid_steps += record.invalid_steps
            largest_group = max(largest_group, record.largest_group)

            if self.record_trace:
                trace.append(record.multiset)
            objective_trajectory.append(record.objective)

            if convergence_round is None and record.converged:
                convergence_round = round_index + 1

            if on_round is not None and on_round(record):
                stopped_by_callback = True
                break
        records.close()

        converged = convergence_round is not None
        if converged and self.algorithm.enforce and not stopped_by_callback:
            # Once at S* = f(S*), every further step is a stutter, so the
            # observed prefix determines the whole computation.
            trace.mark_complete()

        final_states = self.current_states()
        return SimulationResult(
            converged=converged,
            convergence_round=convergence_round,
            rounds_executed=rounds_executed,
            final_states=final_states,
            output=self.algorithm.result(Multiset(final_states)),
            expected_output=self.algorithm.result(self._target),
            trace=trace if self.record_trace else Trace([Multiset(final_states)]),
            objective_trajectory=objective_trajectory,
            group_steps=group_steps,
            improving_steps=improving_steps,
            stutter_steps=stutter_steps,
            invalid_steps=invalid_steps,
            largest_group=largest_group,
            metadata={
                "algorithm": self.algorithm.name,
                "environment": self.environment.describe(),
                "scheduler": self.scheduler.describe(),
                "num_agents": self.environment.num_agents,
                "seed": self.seed,
            },
        )


def _validate_partition(groups: Sequence[Group], num_agents: int) -> None:
    """Ensure scheduled groups are pairwise disjoint and reference real agents.

    The happy path is a set-bulk check (C-speed); only when it detects a
    problem does the per-agent loop rerun to produce the precise error.
    """
    member_tuples = list(map(_group_members, groups))
    seen = set(chain.from_iterable(member_tuples))
    total = sum(map(len, member_tuples))
    valid = len(seen) == total and (
        not seen or (min(seen) >= 0 and max(seen) < num_agents)
    )
    if not valid:
        _explain_invalid_partition(groups, num_agents)


def _explain_invalid_partition(groups: Sequence[Group], num_agents: int) -> None:
    """Slow path: find and report the first offending agent id."""
    seen: set[int] = set()
    for group in groups:
        for agent_id in group:
            if not 0 <= agent_id < num_agents:
                raise SimulationError(
                    f"scheduler produced agent id {agent_id} outside "
                    f"0..{num_agents - 1}"
                )
            if agent_id in seen:
                raise SimulationError(
                    f"scheduler produced overlapping groups (agent {agent_id} twice)"
                )
            seen.add(agent_id)
    raise SimulationError("scheduler produced an invalid partition")
