"""The round-based simulation engine.

The engine executes the paper's transition relation directly:

* at the start of every round the **environment** takes a transition — the
  concrete :class:`~repro.environment.base.Environment` produces the next
  environment state ``G`` (which agents are enabled, which links are
  available);
* then the **agents** take a transition — a
  :class:`~repro.agents.scheduler.Scheduler` picks a partition of the
  enabled agents into groups compatible with ``G``, and every scheduled
  group executes the algorithm's group step.  Unscheduled agents and
  disabled agents stutter, which the reflexivity of ``R`` always allows.

Every group step is validated against the optimization relation ``D``
(conserve ``f``, decrease ``h``), so the conservation law
``f(S) = f(S(0))`` is an enforced run-time invariant, not an assumption.
The engine records a full trace of agent-state multisets so that the
temporal-logic specifications (3)–(5) can be checked after the fact.

The execution core is the :meth:`Simulator.steps` generator, which yields
one :class:`RoundRecord` per simulated round.  Streaming consumers (live
dashboards, early-stop policies, the declarative experiment layer) iterate
it directly and can pause between rounds — the simulator keeps its
position, so resuming is just pulling the next record.
:meth:`Simulator.run` delegates to the shared engine driver
(:func:`repro.simulation.protocol.run_engine`), which carries the stopping
policy and the probe pipeline for every execution backend and accumulates
the classic :class:`SimulationResult`.

Round bookkeeping is *incremental* by default: instead of rebuilding the
agent-state multiset and recomputing the objective ``h`` from scratch
every round, the engine folds each round's ``(removed, added)`` state
delta into a maintained :class:`MutableMultiset`, updates ``h`` in
O(|delta|) for objectives that support exact increments, and compares
against the target via an O(1) content fingerprint.  A round in which two
agents moved therefore costs O(2) bookkeeping, not O(n) — matching the
paper's "speed up or slow down depending on the resources available"
story.  Results are byte-identical to full recomputation (enforced by the
parity test suite); ``incremental=False`` selects the full-recompute
reference mode and ``cross_check=True`` validates the maintained state
against it every round.
"""

from __future__ import annotations

import random
from itertools import chain
from operator import attrgetter
from typing import Any, Callable, Iterator, Sequence

from ..agents.agent import Agent
from ..agents.group import Group
from ..agents.scheduler import MaximalGroupsScheduler, Scheduler
from ..core.algorithm import SelfSimilarAlgorithm
from ..core.errors import SimulationError
from ..core.multiset import Multiset, MutableMultiset
from ..core.relation import STUTTER_JUDGEMENT, StepJudgement, StepKind
from ..environment.base import Environment, EnvironmentState, connected_component_tuples
from ..environment.connectivity import ConnectivityTracker
from .checkpoint import (
    EngineCheckpoint,
    RoundState,
    RunCheckpoint,
    decode_rng_state,
    decode_state,
    encode_rng_state,
    encode_state,
    engine_checkpoint_of,
    rebuilt_multiset,
)
from .protocol import Probe, RoundRecord, run_engine
from .result import SimulationResult

__all__ = ["RoundRecord", "Simulator"]

_group_members = attrgetter("members")


class Simulator:
    """Simulate one self-similar algorithm under one environment.

    Parameters
    ----------
    algorithm:
        The :class:`SelfSimilarAlgorithm` to execute.
    environment:
        The environment model producing per-round availability.
    initial_values:
        The problem inputs, one per agent (sensor readings, array entries,
        coordinates, ...).  The number of agents is taken from the
        environment's topology and must match.
    scheduler:
        How groups are formed each round; defaults to
        :class:`MaximalGroupsScheduler`.
    seed:
        Seed of the run's random generator (drives the environment, the
        scheduler and any randomness in the group step rule).  When None,
        an explicit seed is drawn once and recorded as :attr:`seed`, so
        every run — including "unseeded" ones — is reproducible from its
        result metadata.
    record_trace:
        When False, only the latest state is kept; long benchmark runs use
        this to keep memory flat.
    incremental:
        When True (default), the simulator maintains the round multiset
        and the objective value incrementally: each round folds the
        ``(removed, added)`` state delta reported by the executed group
        steps into a :class:`MutableMultiset`, updates the objective in
        O(|delta|) for objectives that support exact deltas, and checks
        convergence against the target via an O(1) content fingerprint.
        Results are byte-identical to full recomputation.  When False, the
        simulator recomputes everything from the agent states every round
        — the reference behaviour the incremental path is measured and
        cross-checked against.  Note: the incremental path assumes agent
        states change only through executed group steps; code that mutates
        ``Agent.state`` directly between rounds must use
        ``incremental=False`` (or will be caught by ``cross_check``).
    incremental_environment:
        When True (default), and the environment reports per-round deltas
        (:attr:`Environment.reports_deltas`), the simulator maintains the
        communication groups incrementally across rounds with a
        :class:`~repro.environment.connectivity.ConnectivityTracker`
        (when the scheduler consumes components) and propagates memoized
        environment views across unchanged rounds.  The environment's
        random draws and the produced states are identical either way —
        this flag only selects how connectivity is computed.  When False,
        every round recomputes the components from scratch: the reference
        mode the incremental environment layer is measured and
        cross-checked against, mirroring ``incremental=False``.
    cross_check:
        Debug flag.  When True (and ``incremental``), every round the
        maintained multiset, fingerprint and objective are verified
        against a full recomputation from the agent states — and, when
        the environment layer is incremental, the maintained communication
        groups against a from-scratch component walk — raising
        :class:`SimulationError` on any divergence.
    """

    def __init__(
        self,
        algorithm: SelfSimilarAlgorithm,
        environment: Environment,
        initial_values: Sequence[Any],
        scheduler: Scheduler | None = None,
        seed: int | None = None,
        record_trace: bool = True,
        incremental: bool = True,
        incremental_environment: bool = True,
        cross_check: bool = False,
    ):
        if len(initial_values) != environment.num_agents:
            raise SimulationError(
                f"{len(initial_values)} initial values supplied for "
                f"{environment.num_agents} agents"
            )
        if seed is None:
            # Draw the effective seed explicitly so the run stays
            # reproducible: the result metadata records this value.
            seed = random.randrange(2**63)
        self.algorithm = algorithm
        self.environment = environment
        self.scheduler = scheduler or MaximalGroupsScheduler()
        self.seed = seed
        self.record_trace = record_trace
        self.incremental = incremental
        self.incremental_environment = incremental_environment
        self.cross_check = cross_check
        self.initial_values = list(initial_values)

        # Incremental environment layer: only environments that report
        # deltas can be tracked, and the tracker itself is only worth its
        # per-round upkeep when the scheduler consumes communication
        # groups (pairwise gossip, for one, never looks at components).
        self._use_environment_delta = (
            incremental_environment and environment.reports_deltas
        )
        self._tracker: ConnectivityTracker | None = None
        if self._use_environment_delta and getattr(
            self.scheduler, "uses_communication_groups", False
        ):
            self._tracker = ConnectivityTracker(
                environment.topology, group_factory=Group
            )
        self._previous_environment_state: EnvironmentState | None = None

        initial_states = algorithm.initial_states(self.initial_values)
        self.agents: list[Agent] = [
            Agent(agent_id=index, state=state)
            for index, state in enumerate(initial_states)
        ]
        self._initial_multiset = Multiset(initial_states)
        self._target = algorithm.target(initial_states)
        self._target_size = len(self._target)
        self._target_fingerprint = self._target.fingerprint()
        # The entire mutable run state — RNG, round index, maintained
        # multiset, maintained objective, quiet-round tuple cache — lives
        # in one explicit object, which is what checkpoint()/restore()
        # serialize.  (The objective stays lazily initialised so that
        # building a simulator never evaluates it.)
        self._state = RoundState(seed, self._initial_multiset)

    # -- the explicit run state (see RoundState) -------------------------------
    # Attribute-style access is kept so call sites (and the parity test
    # suite's references) read naturally; the state object is the single
    # owner.

    @property
    def _rng(self) -> random.Random:
        return self._state.rng

    @_rng.setter
    def _rng(self, value: random.Random) -> None:
        self._state.rng = value

    @property
    def _round_index(self) -> int:
        return self._state.round_index

    @_round_index.setter
    def _round_index(self, value: int) -> None:
        self._state.round_index = value

    @property
    def _maintained(self) -> MutableMultiset:
        return self._state.maintained

    @_maintained.setter
    def _maintained(self, value: MutableMultiset) -> None:
        self._state.maintained = value

    @property
    def _objective_value(self) -> float | None:
        return self._state.objective_value

    @_objective_value.setter
    def _objective_value(self, value: float | None) -> None:
        self._state.objective_value = value

    @property
    def _stutter_tuples(self) -> dict[int, tuple[StepJudgement, ...]]:
        return self._state.stutter_tuples

    # -- state access ----------------------------------------------------------

    def current_states(self) -> list:
        """Return the current agent states, indexed by agent id."""
        return [agent.state for agent in self.agents]

    def current_multiset(self) -> Multiset:
        """Return the current agent states as a multiset."""
        return Multiset(self.current_states())

    @property
    def target(self) -> Multiset:
        """The multiset ``S* = f(S(0))`` the agents must reach and keep."""
        return self._target

    @property
    def round_index(self) -> int:
        """Index of the next round :meth:`steps` will execute."""
        return self._round_index

    def has_converged(self) -> bool:
        """Return True when the agents are currently at ``S*``."""
        return self.current_multiset() == self._target

    # -- execution --------------------------------------------------------------

    def reset(self) -> None:
        """Restore the initial configuration (same seed, same initial values)."""
        self._state.reset(self.seed, self._initial_multiset)
        for agent in self.agents:
            agent.reset()
        self.environment.reset()
        if self._tracker is not None:
            self._tracker.reset()
        self._previous_environment_state = None

    # -- checkpoint / restore ---------------------------------------------------

    def checkpoint(self) -> EngineCheckpoint:
        """Serialize the run state at the current round boundary.

        Everything the continuation depends on is captured exactly: agent
        states (and their participation counters), the RNG state, the
        maintained objective value (whose float summation history is not
        recomputable), and the environment's own mutable state.  Derived
        structure — the maintained multiset, the connectivity tracker —
        is rebuilt deterministically on restore.
        """
        state = self._state
        return EngineCheckpoint(
            engine="simulator",
            seed=self.seed,
            round_index=state.round_index,
            rng_state=encode_rng_state(state.rng.getstate()),
            agent_states=[encode_state(agent.state) for agent in self.agents],
            objective_value=encode_state(state.objective_value),
            agent_counters=[
                [agent.steps_participated, agent.steps_changed]
                for agent in self.agents
            ],
            environment=self.environment.state_dict(),
        )

    def restore(self, checkpoint: EngineCheckpoint | RunCheckpoint | dict) -> None:
        """Restore a checkpoint into this (identically-constructed) engine.

        The continued run is byte-identical to the uninterrupted one: same
        random draws, same round records, same maintained objective.  The
        checkpoint must come from the same configuration — engine kind,
        seed and agent count are verified.
        """
        if isinstance(checkpoint, RunCheckpoint):
            checkpoint = checkpoint.engine
        checkpoint = engine_checkpoint_of(checkpoint)
        if checkpoint.engine != "simulator":
            raise SimulationError(
                f"cannot restore a {checkpoint.engine!r} checkpoint into "
                "the synchronous Simulator"
            )
        if checkpoint.seed != self.seed:
            raise SimulationError(
                f"checkpoint was taken under seed {checkpoint.seed}, but "
                f"this simulator runs seed {self.seed}; restore requires an "
                "identically-constructed engine"
            )
        if len(checkpoint.agent_states) != len(self.agents):
            raise SimulationError(
                f"checkpoint holds {len(checkpoint.agent_states)} agent "
                f"states for {len(self.agents)} agents"
            )
        state = self._state
        state.rng.setstate(decode_rng_state(checkpoint.rng_state))
        state.round_index = checkpoint.round_index
        counters = checkpoint.agent_counters or [None] * len(self.agents)
        for agent, encoded, counter in zip(
            self.agents, checkpoint.agent_states, counters
        ):
            agent.state = decode_state(encoded)
            if counter is not None:
                agent.steps_participated, agent.steps_changed = counter
        self.environment.load_state(checkpoint.environment)
        state.maintained = rebuilt_multiset(self.current_states())
        state.objective_value = decode_state(checkpoint.objective_value)
        if self._tracker is not None:
            # The tracker resynchronizes from the next observed state —
            # the deterministic rebuild recipe; maintained components are
            # pinned equal to the from-scratch walk either way.
            self._tracker.reset()
        self._previous_environment_state = None

    def _advance_environment(self, round_index: int) -> EnvironmentState:
        """One environment transition, maintaining the incremental views.

        The random draws are identical in every mode; what differs is
        whether the new state's derived views (components, effective
        edges) are maintained from the reported delta or recomputed
        lazily from scratch.
        """
        if not self._use_environment_delta:
            return self.environment.advance(round_index, self._rng)
        environment_state, delta = self.environment.advance_with_delta(
            round_index, self._rng
        )
        if self._tracker is not None:
            self._tracker.observe(environment_state, delta)
        elif delta is not None and delta.is_empty:
            previous = self._previous_environment_state
            if previous is not None:
                environment_state._adopt_view_memos(previous)
        self._previous_environment_state = environment_state
        return environment_state

    def _execute_round(self, round_index: int) -> RoundRecord:
        """Execute one round — one environment transition, one scheduled
        agent transition per group — and record what happened.

        In incremental mode the round's bookkeeping is O(|delta|): the
        state deltas reported by :meth:`Group.install` are folded into the
        maintained multiset, the objective is updated from the same delta,
        and convergence is decided by fingerprint comparison.  In full
        mode everything is recomputed from the agent states, exactly as
        the pre-incremental engine did.
        """
        environment_state = self._advance_environment(round_index)
        scheduled = self.scheduler.schedule(environment_state, self._rng)

        incremental = self.incremental
        # Singleton groups dominate sparse rounds; when the algorithm
        # declares that lone agents always stutter (and draw no
        # randomness), their step-rule calls can be skipped outright.
        skip_singletons = incremental and self.algorithm.singleton_stutters

        tracker = self._tracker
        if tracker is not None and scheduled is tracker.scheduler_groups(
            environment_state
        ):
            # The scheduled list *is* the maintained component partition:
            # disjoint and in-range by construction, so the O(n)
            # validation pass is unnecessary — and the non-singleton
            # components are already known, so the round loop touches
            # O(active) groups instead of iterating every singleton.
            if self.cross_check:
                self._verify_maintained_components(environment_state)
            if skip_singletons:
                return self._execute_maintained_round(
                    round_index, scheduled, tracker
                )
        else:
            _validate_partition(scheduled, self.environment.num_agents)

        agents = self.agents
        algorithm = self.algorithm
        rng = self._rng
        groups: list[Group] = []
        judgements: list[StepJudgement] = []
        removed: list = []
        added: list = []
        clean = True
        try:
            for group in scheduled:
                size = len(group.members)
                if size == 0:
                    continue
                if size == 1 and skip_singletons:
                    groups.append(group)
                    judgements.append(STUTTER_JUDGEMENT)
                    continue
                states_before = group.states_of(agents)
                states_after, judgement = algorithm.apply_group_step(
                    states_before, rng, fast_stutter=incremental
                )
                if judgement.kind is not StepKind.STUTTER:
                    # Valid improvements are installed; invalid steps (only
                    # reachable when the algorithm's enforcement is off) are
                    # recorded and applied anyway, so that benchmarks can
                    # observe the consequences of violating the methodology
                    # (Figure 1 / direct second-smallest).
                    if judgement.kind is not StepKind.IMPROVEMENT:
                        clean = False
                    group_removed, group_added = group.install(agents, states_after)
                    removed.extend(group_removed)
                    added.extend(group_added)
                groups.append(group)
                judgements.append(judgement)
        except BaseException:
            # A mid-round exception (an enforcement violation raised by a
            # later group, say) must not desynchronise the maintained
            # round state: earlier groups already installed their new
            # states.  Fold what was installed, and drop the cached
            # objective value — it describes the pre-round bag and will
            # be recomputed lazily if the caller resumes.
            if incremental and (removed or added):
                self._maintained.apply_delta(removed, added)
                self._objective_value = None
            raise

        if incremental:
            multiset, objective, converged = self._fold_round(removed, added, clean)
        else:
            # Reference path: the round's multiset is recomputed from the
            # agent states and shared by the trace, the objective
            # trajectory and the convergence check.
            multiset = self.current_multiset()
            objective = self.algorithm.objective(multiset)
            converged = multiset == self._target
        return RoundRecord(
            round_index=round_index,
            multiset=multiset,
            objective=objective,
            converged=converged,
            groups=tuple(groups),
            judgements=tuple(judgements),
        )

    def _execute_maintained_round(
        self,
        round_index: int,
        scheduled: Sequence[Group],
        tracker: ConnectivityTracker,
    ) -> RoundRecord:
        """Round execution over the maintained component partition.

        Semantically identical to the generic loop in
        :meth:`_execute_round` — same groups in the same order, same
        judgements, same state deltas, same random draws — but the
        singleton components (which all stutter, by the algorithm's
        ``singleton_stutters`` declaration) are pre-filled instead of
        iterated, so the loop runs over the round's active groups only.
        """
        agents = self.agents
        apply_group_step = self.algorithm.apply_group_step
        rng = self._rng
        stutter = STUTTER_JUDGEMENT
        improvement = StepKind.IMPROVEMENT
        judgements: list[StepJudgement] | None = None
        removed: list = []
        added: list = []
        clean = True
        try:
            for index, group in tracker.nonsingleton_groups():
                members = group.members
                states_after, judgement = apply_group_step(
                    [agents[member].state for member in members],
                    rng,
                    fast_stutter=True,
                )
                if judgement is not stutter and judgement.kind is not StepKind.STUTTER:
                    if judgement.kind is not improvement:
                        clean = False
                    group_removed, group_added = group.install(agents, states_after)
                    removed.extend(group_removed)
                    added.extend(group_added)
                    if judgements is None:
                        judgements = [stutter] * len(scheduled)
                    judgements[index] = judgement
        except BaseException:
            # Same contract as the generic loop: earlier groups already
            # installed their states, so fold what was applied before
            # re-raising (see :meth:`_execute_round`).
            if removed or added:
                self._maintained.apply_delta(removed, added)
                self._objective_value = None
            raise

        multiset, objective, converged = self._fold_round(removed, added, clean)
        if judgements is None:
            # All-stutter round: share one cached all-stutter tuple per
            # partition size instead of rebuilding it every quiet round.
            judgements_tuple = self._stutter_judgements(len(scheduled))
        else:
            judgements_tuple = tuple(judgements)
        return RoundRecord(
            round_index=round_index,
            multiset=multiset,
            objective=objective,
            converged=converged,
            # The tracker shares one tuple per partition: records of quiet
            # rounds reference the same groups tuple instead of copying.
            groups=tracker.groups_tuple(),
            judgements=judgements_tuple,
        )

    def _stutter_judgements(self, size: int) -> tuple[StepJudgement, ...]:
        """A shared all-stutter judgements tuple of the given length."""
        cached = self._stutter_tuples.get(size)
        if cached is None:
            cached = (STUTTER_JUDGEMENT,) * size
            if len(self._stutter_tuples) < 64:
                self._stutter_tuples[size] = cached
        return cached

    def _verify_maintained_components(
        self, environment_state: EnvironmentState
    ) -> None:
        """Debug cross-check: maintained components == from-scratch walk."""
        expected = connected_component_tuples(
            environment_state.enabled_agents, environment_state.effective_edges()
        )
        maintained = environment_state.communication_group_tuples()
        if maintained != expected:
            raise SimulationError(
                "incremental connectivity diverged from the from-scratch "
                f"component walk at round {environment_state.round_index}: "
                f"maintained {maintained!r} vs actual {expected!r}"
            )

    def _fold_round(
        self, removed: list, added: list, clean: bool
    ) -> tuple[Multiset, float, bool]:
        """Fold one round's state delta into the maintained round state."""
        state = self._state
        maintained = state.maintained
        if state.objective_value is None:
            # First use: price the objective once, on the pre-delta bag.
            state.objective_value = self.algorithm.objective(maintained.snapshot())
        if removed or added:
            try:
                maintained.apply_delta(removed, added)
            except KeyError as error:
                raise SimulationError(
                    "incremental round state out of sync with the agent "
                    "states (were agent states mutated outside a group "
                    f"step?): {error.args[0]}"
                ) from error

        if clean and self.algorithm.objective.supports_delta:
            multiset = maintained.snapshot()
            objective = self.algorithm.objective_delta(
                state.objective_value, multiset, removed, added
            )
        else:
            # No exact delta available (hull/circle objectives), or the
            # round contained steps outside ``D`` whose effect on ``h`` is
            # not delta-reconstructible (enforcement off): recompute in
            # full, on a freshly built multiset so that order-sensitive
            # float summations match the reference path bit for bit.
            multiset = Multiset(self.current_states())
            objective = self.algorithm.objective(multiset)
        state.objective_value = objective

        # The maintained bag's fingerprint is O(1); on fallback rounds the
        # fresh multiset's would cost an O(distinct) walk just to
        # pre-screen the same content.
        converged = (
            len(multiset) == self._target_size
            and maintained.fingerprint() == self._target_fingerprint
            and multiset == self._target
        )
        if self.cross_check:
            self._verify_maintained_state(multiset, objective)
        return multiset, objective, converged

    def _verify_maintained_state(self, multiset: Multiset, objective: float) -> None:
        """Debug cross-check: maintained state must equal full recomputation.

        Always validates the *maintained* bag against the agent states —
        on fallback rounds the round's ``multiset`` is itself a fresh
        rebuild, so comparing only it would never catch maintained-state
        drift (e.g. external ``Agent.state`` mutation).
        """
        full = self.current_multiset()
        maintained = self._maintained.snapshot()
        if full != maintained or full != multiset:
            raise SimulationError(
                "incremental multiset diverged from the agent states "
                "(were agent states mutated outside a group step?): "
                f"maintained {maintained!r} vs actual {full!r}"
            )
        if full.fingerprint() != self._maintained.fingerprint():
            raise SimulationError(
                "incremental fingerprint diverged from recomputed fingerprint "
                f"({self._maintained.fingerprint():#x} vs {full.fingerprint():#x})"
            )
        full_objective = self.algorithm.objective(full)
        if full_objective != objective:
            raise SimulationError(
                "incremental objective diverged from full recomputation "
                f"({objective!r} vs {full_objective!r})"
            )

    def steps(self, max_rounds: int | None = None) -> Iterator[RoundRecord]:
        """Stream the simulation, one :class:`RoundRecord` per round.

        The generator executes rounds lazily: nothing runs until a record
        is pulled, and abandoning the iterator pauses the simulation with
        no loose state — calling :meth:`steps` again resumes from the next
        round.  ``max_rounds`` bounds how many rounds *this* iterator will
        execute; None streams indefinitely (the caller decides when to
        stop, e.g. on :attr:`RoundRecord.converged`).

        A round that *raises* (an enforcement violation, say) keeps the
        group steps installed before the failure — the maintained round
        state stays consistent with the agent states — but the aborted
        attempt's RNG draws are not rolled back: pulling the stream again
        re-executes the same round index as a fresh round from the current
        RNG state.
        """
        executed = 0
        while max_rounds is None or executed < max_rounds:
            record = self._execute_round(self._round_index)
            self._round_index += 1
            executed += 1
            yield record

    # -- the Engine protocol -----------------------------------------------------

    def initial_snapshot(self) -> tuple[Multiset, float]:
        """The pre-run ``(multiset, objective)`` pair (Engine protocol).

        In incremental mode the maintained bag already holds the current
        states; its cached snapshot also seeds the objective value so the
        first round starts from a known ``h`` instead of recomputing.
        """
        if self.incremental:
            initial_multiset = self._maintained.snapshot()
            if self._objective_value is None:
                self._objective_value = self.algorithm.objective(initial_multiset)
            return initial_multiset, self._objective_value
        initial_multiset = self.current_multiset()
        return initial_multiset, self.algorithm.objective(initial_multiset)

    def trace_complete(self, converged: bool, stopped_by_callback: bool) -> bool:
        """Once at ``S* = f(S*)``, every further step is a stutter, so the
        observed prefix determines the whole computation — provided the
        algorithm actually enforces ``D`` and the run was not cut short."""
        return converged and self.algorithm.enforce and not stopped_by_callback

    def finish_metadata(self) -> dict:
        """Run metadata recorded on the result (Engine protocol)."""
        return {
            "algorithm": self.algorithm.name,
            "environment": self.environment.describe(),
            "scheduler": self.scheduler.describe(),
            "num_agents": self.environment.num_agents,
            "seed": self.seed,
        }

    def run(
        self,
        max_rounds: int = 1000,
        stop_at_convergence: bool = True,
        extra_rounds_after_convergence: int = 0,
        on_round: Callable[[RoundRecord], bool | None] | None = None,
        probes: Sequence[Probe] | None = None,
        history: str | None = None,
        resume_from: RunCheckpoint | None = None,
    ) -> SimulationResult:
        """Run the simulation and return a :class:`SimulationResult`.

        Delegates to the shared engine driver
        (:func:`repro.simulation.protocol.run_engine`), which pulls round
        records from :meth:`steps`, applies the stopping policy and feeds
        the probe pipeline; see its docstring for the ``max_rounds``,
        ``stop_at_convergence``, ``extra_rounds_after_convergence``,
        ``on_round``, ``probes``, ``history`` and ``resume_from``
        parameters.  With ``resume_from``, the checkpointed engine state
        is restored first and the completed result is byte-identical to
        the uninterrupted run's.

        ``history`` defaults to ``"full"`` (the classic result with its
        complete trace), or ``"objective"`` when the simulator was built
        with ``record_trace=False`` — exactly the retention that flag
        always selected.
        """
        if history is None:
            history = "full" if self.record_trace else "objective"
        if resume_from is not None:
            self.restore(resume_from)
        return run_engine(
            self,
            max_rounds=max_rounds,
            stop_at_convergence=stop_at_convergence,
            extra_rounds_after_convergence=extra_rounds_after_convergence,
            on_round=on_round,
            probes=probes,
            history=history,
            resume_from=resume_from,
        )


def _validate_partition(groups: Sequence[Group], num_agents: int) -> None:
    """Ensure scheduled groups are pairwise disjoint and reference real agents.

    The happy path is a set-bulk check (C-speed); only when it detects a
    problem does the per-agent loop rerun to produce the precise error.
    """
    member_tuples = list(map(_group_members, groups))
    seen = set(chain.from_iterable(member_tuples))
    total = sum(map(len, member_tuples))
    valid = len(seen) == total and (
        not seen or (min(seen) >= 0 and max(seen) < num_agents)
    )
    if not valid:
        _explain_invalid_partition(groups, num_agents)


def _explain_invalid_partition(groups: Sequence[Group], num_agents: int) -> None:
    """Slow path: find and report the first offending agent id."""
    seen: set[int] = set()
    for group in groups:
        for agent_id in group:
            if not 0 <= agent_id < num_agents:
                raise SimulationError(
                    f"scheduler produced agent id {agent_id} outside "
                    f"0..{num_agents - 1}"
                )
            if agent_id in seen:
                raise SimulationError(
                    f"scheduler produced overlapping groups (agent {agent_id} twice)"
                )
            seen.add(agent_id)
    raise SimulationError("scheduler produced an invalid partition")
