"""``python -m repro`` — run one self-similar computation from the shell."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
