"""Planar geometry substrate for the circumscribing-circle example (§4.5)."""

from .enclosing_circle import (
    Circle,
    smallest_circle_of_circles,
    smallest_enclosing_circle,
)
from .hull import (
    convex_hull,
    hull_area,
    hull_perimeter,
    is_convex_polygon,
    merge_hulls,
    point_in_hull,
)
from .point import Point, centroid, collinear, distance, orientation

__all__ = [
    "Circle",
    "smallest_circle_of_circles",
    "smallest_enclosing_circle",
    "convex_hull",
    "hull_area",
    "hull_perimeter",
    "is_convex_polygon",
    "merge_hulls",
    "point_in_hull",
    "Point",
    "centroid",
    "collinear",
    "distance",
    "orientation",
]
