"""Convex hulls in the plane.

The paper generalises the (non-super-idempotent) circumscribing-circle
function into the convex-hull function, which *is* super-idempotent: the
hull of a point set equals the hull of (the hull's vertices plus any extra
points).  Agents therefore exchange and merge hulls.

This module implements Andrew's monotone-chain algorithm, hull perimeter
(the paper's objective ``h`` for the example is ``|A|·P − Σ perimeter(V_a)``)
and point-in-hull testing.  Hulls are returned as tuples of
:class:`~repro.geometry.point.Point` in counter-clockwise order, starting
from the lexicographically smallest vertex, so that equal hulls compare
equal structurally.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .point import EPSILON, Point, as_points, orientation

__all__ = [
    "convex_hull",
    "hull_perimeter",
    "hull_area",
    "point_in_hull",
    "merge_hulls",
    "is_convex_polygon",
]


def convex_hull(points: Iterable[Point | tuple]) -> tuple[Point, ...]:
    """Return the convex hull of ``points`` as a CCW tuple of vertices.

    Duplicate and interior points are removed.  Collinear points on the
    boundary are *not* kept (only extreme vertices are returned), which
    gives a canonical representation: two point sets with the same hull
    produce identical tuples.

    Degenerate inputs are handled naturally: the hull of a single point is
    that point; the hull of collinear points is the pair of extreme points.
    """
    pts = sorted(set(as_points(list(points))))
    if len(pts) <= 2:
        return tuple(pts)

    def half_hull(ordered: Sequence[Point]) -> list[Point]:
        chain: list[Point] = []
        for point in ordered:
            while len(chain) >= 2 and orientation(chain[-2], chain[-1], point) <= EPSILON:
                chain.pop()
            chain.append(point)
        return chain

    lower = half_hull(pts)
    upper = half_hull(list(reversed(pts)))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 2:
        # All points coincide after deduplication.
        return (pts[0],)
    if len(hull) == 2 and hull[0] == hull[1]:
        return (hull[0],)
    return _canonical(hull)


def _canonical(vertices: Sequence[Point]) -> tuple[Point, ...]:
    """Rotate a CCW vertex list so it starts at the smallest vertex."""
    start = min(range(len(vertices)), key=lambda index: vertices[index])
    return tuple(vertices[start:]) + tuple(vertices[:start])


def hull_perimeter(hull: Sequence[Point]) -> float:
    """Return the perimeter of a hull (0 for a single point).

    For a two-point "hull" (collinear degenerate case) the perimeter is
    twice the segment length, i.e. the boundary traversed out and back,
    which keeps the perimeter monotone under hull growth.
    """
    vertices = list(hull)
    if len(vertices) <= 1:
        return 0.0
    total = 0.0
    for index, vertex in enumerate(vertices):
        nxt = vertices[(index + 1) % len(vertices)]
        total += vertex.distance_to(nxt)
    return total


def hull_area(hull: Sequence[Point]) -> float:
    """Return the area enclosed by a hull (shoelace formula)."""
    vertices = list(hull)
    if len(vertices) < 3:
        return 0.0
    twice_area = 0.0
    for index, vertex in enumerate(vertices):
        nxt = vertices[(index + 1) % len(vertices)]
        twice_area += vertex.x * nxt.y - nxt.x * vertex.y
    return abs(twice_area) / 2.0


def point_in_hull(point: Point, hull: Sequence[Point], tolerance: float = EPSILON) -> bool:
    """Return True when ``point`` lies inside or on the boundary of ``hull``."""
    vertices = list(hull)
    if not vertices:
        return False
    if len(vertices) == 1:
        return point.almost_equal(vertices[0], tolerance)
    if len(vertices) == 2:
        a, b = vertices
        cross = orientation(a, b, point)
        if abs(cross) > max(tolerance, tolerance * a.distance_to(b)):
            return False
        dot = (point.x - a.x) * (b.x - a.x) + (point.y - a.y) * (b.y - a.y)
        return -tolerance <= dot <= a.distance_to(b) ** 2 + tolerance
    for index, vertex in enumerate(vertices):
        nxt = vertices[(index + 1) % len(vertices)]
        if orientation(vertex, nxt, point) < -tolerance:
            return False
    return True


def merge_hulls(*hulls: Sequence[Point]) -> tuple[Point, ...]:
    """Return the convex hull of the union of several hulls.

    This is the group step of the paper's convex-hull algorithm: a group of
    agents replaces each member's hull with the hull of the union of all
    the member hulls.  Super-idempotence of the hull function makes this
    step conserve the global hull.
    """
    points: list[Point] = []
    for hull in hulls:
        points.extend(hull)
    return convex_hull(points)


def is_convex_polygon(vertices: Sequence[Point], tolerance: float = EPSILON) -> bool:
    """Return True when the CCW vertex sequence forms a convex polygon."""
    pts = list(vertices)
    if len(pts) <= 2:
        return True
    for index in range(len(pts)):
        a = pts[index]
        b = pts[(index + 1) % len(pts)]
        c = pts[(index + 2) % len(pts)]
        if orientation(a, b, c) < -tolerance:
            return False
    return True
