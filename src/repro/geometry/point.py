"""Planar points and elementary predicates.

The circumscribing-circle example of the paper (§4.5) places every agent at
a point in the plane.  This module provides a small, dependency-free point
type plus the orientation / distance predicates that the convex-hull and
smallest-enclosing-circle routines are built on.

Points are immutable and hashable so they can be stored in the multisets
and frozensets used throughout the library.  Coordinates are ordinary
floats; predicates that are sensitive to rounding (collinearity, circle
membership) take an explicit tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = ["Point", "orientation", "distance", "collinear", "centroid"]

#: Default absolute tolerance for geometric predicates.
EPSILON = 1e-9


@dataclass(frozen=True, order=True)
class Point:
    """A point in the Euclidean plane."""

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint of the segment joining this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def almost_equal(self, other: "Point", tolerance: float = EPSILON) -> bool:
        """Return True when both coordinates agree within ``tolerance``."""
        return (
            abs(self.x - other.x) <= tolerance and abs(self.y - other.y) <= tolerance
        )

    def as_tuple(self) -> tuple[float, float]:
        """Return the ``(x, y)`` coordinate tuple."""
        return (self.x, self.y)


def orientation(a: Point, b: Point, c: Point) -> float:
    """Signed double area of triangle ``abc``.

    Positive when the points make a counter-clockwise turn, negative when
    clockwise and (near) zero when collinear.
    """
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


def collinear(a: Point, b: Point, c: Point, tolerance: float = EPSILON) -> bool:
    """Return True when the three points are collinear within ``tolerance``."""
    return abs(orientation(a, b, c)) <= tolerance


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def centroid(points: Iterable[Point]) -> Point:
    """Return the centroid (mean point) of a non-empty collection of points."""
    points = list(points)
    if not points:
        raise ValueError("centroid() of an empty collection of points")
    return Point(
        sum(p.x for p in points) / len(points),
        sum(p.y for p in points) / len(points),
    )


def as_points(coordinates: Sequence) -> list[Point]:
    """Coerce a sequence of ``Point`` or ``(x, y)`` pairs to a list of points."""
    result = []
    for item in coordinates:
        if isinstance(item, Point):
            result.append(item)
        else:
            x, y = item
            result.append(Point(float(x), float(y)))
    return result
