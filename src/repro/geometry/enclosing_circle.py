"""Smallest enclosing circles.

The paper's §4.5 example asks agents to compute the *circumscribing circle*
of their positions: the unique smallest circle containing every point.  The
paper also uses a second notion — the smallest circle containing a set of
*circles* — to define the (non-super-idempotent) direct function ``f`` whose
failure Figure 2 illustrates.

This module provides both:

* :func:`smallest_enclosing_circle` — Welzl's randomized incremental
  algorithm over points (expected linear time);
* :func:`smallest_circle_of_circles` — the smallest circle containing a set
  of circles, computed with a simple geometric-descent refinement that is
  adequate for the library's simulation purposes and exact for the one- and
  two-circle cases that dominate.

Circles are represented by the immutable :class:`Circle` dataclass.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from .point import EPSILON, Point, as_points

__all__ = ["Circle", "smallest_enclosing_circle", "smallest_circle_of_circles"]


@dataclass(frozen=True)
class Circle:
    """A circle given by its center and radius."""

    center: Point
    radius: float

    def contains_point(self, point: Point, tolerance: float = 1e-7) -> bool:
        """Return True when ``point`` lies inside or on the circle."""
        return self.center.distance_to(point) <= self.radius + tolerance

    def contains_circle(self, other: "Circle", tolerance: float = 1e-7) -> bool:
        """Return True when ``other`` lies entirely inside this circle."""
        return (
            self.center.distance_to(other.center) + other.radius
            <= self.radius + tolerance
        )

    def almost_equal(self, other: "Circle", tolerance: float = 1e-6) -> bool:
        """Return True when center and radius agree within ``tolerance``."""
        return (
            self.center.almost_equal(other.center, tolerance)
            and abs(self.radius - other.radius) <= tolerance
        )


def smallest_enclosing_circle(
    points: Iterable[Point | tuple], seed: int | None = 0
) -> Circle:
    """Return the smallest circle enclosing ``points`` (Welzl's algorithm).

    Parameters
    ----------
    points:
        A non-empty iterable of points (or ``(x, y)`` pairs).
    seed:
        Seed for the random shuffle that gives the algorithm its expected
        linear running time.  Pass ``None`` to use the global random state.
    """
    pts = as_points(list(points))
    if not pts:
        raise ValueError("smallest_enclosing_circle() of an empty point set")
    shuffled = list(dict.fromkeys(pts))  # dedupe, keep deterministic order
    rng = random.Random(seed)
    rng.shuffle(shuffled)

    circle: Circle | None = None
    for index, p in enumerate(shuffled):
        if circle is None or not circle.contains_point(p):
            circle = _circle_with_one_boundary_point(shuffled[: index + 1], p)
    assert circle is not None
    return circle


def _circle_with_one_boundary_point(points: Sequence[Point], p: Point) -> Circle:
    circle = Circle(p, 0.0)
    for index, q in enumerate(points):
        if q == p:
            continue
        if not circle.contains_point(q):
            if circle.radius == 0.0:
                circle = _circle_from_two(p, q)
            else:
                circle = _circle_with_two_boundary_points(points[: index + 1], p, q)
    return circle


def _circle_with_two_boundary_points(
    points: Sequence[Point], p: Point, q: Point
) -> Circle:
    circle = _circle_from_two(p, q)
    for r in points:
        if r in (p, q):
            continue
        if not circle.contains_point(r):
            circle = _circle_from_three(p, q, r)
    return circle


def _circle_from_two(a: Point, b: Point) -> Circle:
    center = a.midpoint(b)
    return Circle(center, center.distance_to(a))


def _circle_from_three(a: Point, b: Point, c: Point) -> Circle:
    """Circumscribed circle of triangle ``abc`` (falls back for collinear input)."""
    ox = (min(a.x, b.x, c.x) + max(a.x, b.x, c.x)) / 2.0
    oy = (min(a.y, b.y, c.y) + max(a.y, b.y, c.y)) / 2.0
    ax, ay = a.x - ox, a.y - oy
    bx, by = b.x - ox, b.y - oy
    cx, cy = c.x - ox, c.y - oy
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if abs(d) < EPSILON:
        # Collinear points: the diametral circle of the two extreme points.
        pts = sorted([a, b, c])
        return _circle_from_two(pts[0], pts[-1])
    ux = (
        (ax * ax + ay * ay) * (by - cy)
        + (bx * bx + by * by) * (cy - ay)
        + (cx * cx + cy * cy) * (ay - by)
    ) / d
    uy = (
        (ax * ax + ay * ay) * (cx - bx)
        + (bx * bx + by * by) * (ax - cx)
        + (cx * cx + cy * cy) * (bx - ax)
    ) / d
    center = Point(ox + ux, oy + uy)
    radius = max(center.distance_to(a), center.distance_to(b), center.distance_to(c))
    return Circle(center, radius)


def smallest_circle_of_circles(
    circles: Iterable[Circle], iterations: int = 200
) -> Circle:
    """Return (an accurate approximation of) the smallest circle containing
    every circle in ``circles``.

    Exact cases (single circle; one circle containing all others; two
    circles) are handled directly.  The general case uses a geometric
    shrinking heuristic: starting from the bounding configuration, the
    center is repeatedly pulled toward the farthest circle, halving the
    step, which converges to the optimum for this convex problem.  The
    returned radius is within ~1e-9 relative error after the default number
    of iterations — far below the tolerances used in tests and benchmarks.
    """
    circle_list = list(circles)
    if not circle_list:
        raise ValueError("smallest_circle_of_circles() of an empty collection")
    # Duplicates add nothing; removing them lets the exact small cases apply
    # as often as possible.
    circle_list = list(dict.fromkeys(circle_list))
    if len(circle_list) == 1:
        return circle_list[0]

    # All inputs are points (zero radius): the problem is exactly the
    # smallest enclosing circle of the centers, which Welzl solves exactly.
    if all(circle.radius == 0.0 for circle in circle_list):
        return smallest_enclosing_circle([circle.center for circle in circle_list])

    # If one circle already contains all others it is the answer.
    for candidate in circle_list:
        if all(candidate.contains_circle(other) for other in circle_list):
            return candidate

    if len(circle_list) == 2:
        return _circle_of_two_circles(circle_list[0], circle_list[1])

    # General case: iterative center refinement.
    center = Point(
        sum(c.center.x for c in circle_list) / len(circle_list),
        sum(c.center.y for c in circle_list) / len(circle_list),
    )

    def radius_at(point: Point) -> tuple[float, Circle]:
        worst = max(circle_list, key=lambda c: point.distance_to(c.center) + c.radius)
        return point.distance_to(worst.center) + worst.radius, worst

    step = max(
        center.distance_to(c.center) + c.radius for c in circle_list
    ) or 1.0
    for _ in range(iterations):
        _, worst = radius_at(center)
        direction_x = worst.center.x - center.x
        direction_y = worst.center.y - center.y
        norm = math.hypot(direction_x, direction_y)
        if norm > EPSILON:
            center = Point(
                center.x + direction_x / norm * step,
                center.y + direction_y / norm * step,
            )
        step /= 2.0
    radius, _ = radius_at(center)
    return Circle(center, radius)


def _circle_of_two_circles(a: Circle, b: Circle) -> Circle:
    """Smallest circle containing two circles (exact)."""
    d = a.center.distance_to(b.center)
    if d + b.radius <= a.radius:
        return a
    if d + a.radius <= b.radius:
        return b
    radius = (d + a.radius + b.radius) / 2.0
    # Center lies on the segment between the two centers, offset so that the
    # new circle is tangent to both.
    t = (radius - a.radius) / d
    center = Point(
        a.center.x + (b.center.x - a.center.x) * t,
        a.center.y + (b.center.y - a.center.y) * t,
    )
    return Circle(center, radius)
