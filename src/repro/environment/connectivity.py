"""Incremental connectivity: communication groups maintained across rounds.

The per-round cost of a simulation used to be dominated not by the
algorithm but by the environment layer: every round the engine re-filtered
the available edges, re-ran a BFS over the whole graph to find the
communication groups, and rebuilt one group object per connected component
— O(n + |E|) work even when the round's churn flipped a handful of edges.

:class:`ConnectivityTracker` replaces the from-scratch walk with delta
maintenance.  Environments that know their own churn report an
:class:`~repro.environment.base.EnvironmentDelta` per round
(:meth:`~repro.environment.base.Environment.advance_with_delta`); the
tracker folds it into a maintained component structure:

* **edge insertions** merge components union-find style (union by size,
  with deferred materialization so a cascade of unions costs the size of
  the merged component once, not per union); the overwhelmingly common
  sparse case — an edge joining two lone agents — takes a direct
  two-singleton fast path;
* **edge deletions and agent disables** dissolve only the components
  incident to the change and re-walk just those vertices (a bounded,
  localized rebuild — deletions cannot reconnect anything, so the walk
  never escapes the dissolved components); an edge leaving a two-agent
  component splits it directly, no walk at all;
* **components untouched by the round's delta keep their identity**, so
  per-component group objects are reused — singleton components (and
  pair components, capped) are interned for the tracker's lifetime —
  and a quiet round allocates O(|delta|) objects instead of O(n).

The component objects are built by the configured ``group_factory`` (the
engine passes :class:`~repro.agents.group.Group`), so the maintained
components *are* the scheduler's group objects: serving a round's groups
is one filtering pass over the min-slot array, with no per-component
indirection or copying.

Components are stored in a *min-slot array*: slot ``i`` holds the
component whose smallest member is agent ``i`` (or None).  Agent ids are
already the sort key of the canonical component order, so producing the
ordered component list is a single filtering pass with no per-round sort,
every structural update is an O(1) list store, and a component's position
in the round's group list is the number of occupied slots below its min
(answered by a C-level count over the parallel presence bytearray).

On low-degree topologies the tracker does not maintain an availability
adjacency at all: localized walks filter the topology's fixed adjacency
through the state's own available-edge set.  Dense topologies (where a
walked vertex would otherwise scan every agent) keep an incrementally
maintained adjacency.

The maintained components are, by construction, exactly the output of
:func:`~repro.environment.base.connected_component_tuples` on the same
state — same members, same sort order — which the differential test suite
(:mod:`tests.test_environment_connectivity`) pins across long randomized
runs of every environment family.  The tracker installs itself on each
observed :class:`EnvironmentState`, whose group accessors then serve the
maintained views; states the tracker has not observed fall back to the
from-scratch computation.
"""

from __future__ import annotations

from typing import Callable

from .base import (
    Edge,
    EnvironmentDelta,
    EnvironmentState,
    Topology,
    connected_component_tuples,
)

__all__ = ["ConnectivityTracker"]

#: Maximum degree up to which localized walks use the fixed topology
#: adjacency filtered by edge membership instead of a maintained
#: availability adjacency.
_STATIC_ADJACENCY_DEGREE_BOUND = 8


class _Component:
    """Default component representation when no group factory is given.

    Mirrors the attribute contract the tracker relies on — a sorted
    ``members`` tuple, set at construction — which is exactly the shape
    of :class:`~repro.agents.group.Group`.
    """

    __slots__ = ("members",)

    def __init__(self, members: tuple[int, ...]):
        self.members = members

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_Component({list(self.members)})"


class ConnectivityTracker:
    """Maintains the communication groups of an environment across rounds.

    Parameters
    ----------
    topology:
        The fixed graph; used to size the per-agent tables.
    group_factory:
        Optional callable building the per-component object from its
        sorted member tuple.  The engine passes
        :class:`~repro.agents.group.Group`, making the maintained
        components directly consumable as scheduled groups; when None,
        :meth:`EnvironmentState.maintained_scheduler_groups` stays None
        and only the component tuples are served.

    Usage: call :meth:`observe` once per round with the state and the
    delta produced by
    :meth:`~repro.environment.base.Environment.advance_with_delta`.  A
    None delta (first round, post-reset, or an environment that lost
    track) resynchronizes from the full state.
    """

    def __init__(
        self,
        topology: Topology,
        group_factory: Callable[[tuple[int, ...]], object] | None = None,
    ):
        num_agents = topology.num_agents
        self._topology = topology
        self._factory = group_factory or _Component
        self._serves_groups = group_factory is not None
        self._state: EnvironmentState | None = None
        self._synced = False
        self._enabled: set[int] = set()
        self._avail_adjacency: dict[int, set[int]] = {}
        adjacency = topology.adjacency()
        max_degree = max(map(len, adjacency.values()), default=0)
        self._static_adjacency = (
            adjacency if max_degree <= _STATIC_ADJACENCY_DEGREE_BOUND else None
        )
        self._component_of: list[object | None] = [None] * num_agents
        # min_slot[i] = the component whose smallest member is i;
        # _present mirrors occupancy for C-level position counting;
        # _multi_mins holds the min members of non-singleton components.
        self._min_slot: list[object | None] = [None] * num_agents
        self._present = bytearray(num_agents)
        self._multi_mins: set[int] = set()
        # Singleton and pair components are interned (pairs capped so
        # unbounded topologies cannot grow memory without bound): the
        # same lone agent or blinking edge keeps one component object
        # for the tracker's lifetime.
        self._singletons: list[object | None] = [None] * num_agents
        self._pairs: dict[tuple[int, int], object] = {}
        self._pair_cap = 65536
        # Per-round lazy materializations (invalidated when the round's
        # delta changed anything).
        self._tuples: list[tuple[int, ...]] | None = None
        self._groups: list | None = None
        self._groups_tuple: tuple | None = None
        self._nonsingletons: list[tuple[int, object]] | None = None

    # -- round driving --------------------------------------------------------

    def observe(
        self, state: EnvironmentState, delta: EnvironmentDelta | None
    ) -> None:
        """Fold one round's environment transition into the maintained state.

        Installs the tracker on ``state`` so its group accessors serve the
        maintained components for the rest of the round.
        """
        if delta is None or not self._synced:
            self._resync(state)
        elif not delta.is_empty:
            self._apply_delta(delta, state)
        self._state = state
        object.__setattr__(state, "_maintained_components", self)

    def reset(self) -> None:
        """Forget everything; the next :meth:`observe` resynchronizes."""
        self._synced = False
        self._state = None

    # -- views ----------------------------------------------------------------

    def component_tuples(self, state: EnvironmentState) -> list[tuple[int, ...]]:
        """The communication groups of ``state`` as sorted member tuples.

        Identical (members and order) to
        :func:`~repro.environment.base.connected_component_tuples` on the
        state's enabled agents and effective edges.
        """
        if state is not self._state:
            # A state from some other round (or a tracker handle copied
            # onto a state we never observed): serve the truth, from
            # scratch.
            return connected_component_tuples(
                state.enabled_agents, state.effective_edges()
            )
        if self._tuples is None:
            self._tuples = [
                component.members
                for component in self._min_slot
                if component is not None
            ]
        return self._tuples

    def scheduler_groups(self, state: EnvironmentState) -> list | None:
        """The maintained per-component group objects, in component order.

        Returns None when no group factory was configured or ``state`` is
        not the tracker's current round.  The list is shared and reused
        across quiet rounds — callers must not mutate it.
        """
        if not self._serves_groups or state is not self._state:
            return None
        groups = self._groups
        if groups is None:
            # The min-slot array is ordered by construction; components
            # are the factory's group objects, so the round's group list
            # is one C-level filtering pass.
            groups = self._groups = list(filter(None, self._min_slot))
        return groups

    def groups_tuple(self) -> tuple:
        """:meth:`scheduler_groups` as a shared tuple (for round records).

        Quiet rounds hand out the same tuple object, so a static stretch
        of a simulation shares one groups tuple across all its records.
        """
        if self._groups_tuple is None:
            groups = self._groups
            if groups is None:
                groups = self._groups = list(filter(None, self._min_slot))
            self._groups_tuple = tuple(groups)
        return self._groups_tuple

    def nonsingleton_groups(self) -> list[tuple[int, object]]:
        """``(index, component)`` for every non-singleton component, in order.

        ``index`` is the component's position in :meth:`scheduler_groups`:
        the number of occupied min-slots below its smallest member,
        counted at C speed over the presence bytearray.
        """
        nonsingletons = self._nonsingletons
        if nonsingletons is None:
            min_slot = self._min_slot
            count = self._present.count
            nonsingletons = self._nonsingletons = []
            append = nonsingletons.append
            position = 0
            previous = 0
            # Cumulative segment counts: the presence bytearray is walked
            # once in total, not once per component.
            for key in sorted(self._multi_mins):
                position += count(1, previous, key)
                append((position, min_slot[key]))
                previous = key
        return nonsingletons

    # -- maintenance ----------------------------------------------------------

    def _invalidate_round_views(self) -> None:
        self._tuples = None
        self._groups = None
        self._groups_tuple = None
        self._nonsingletons = None

    def _singleton(self, agent: int):
        component = self._singletons[agent]
        if component is None:
            component = self._factory((agent,))
            self._singletons[agent] = component
        return component

    def _pair(self, members: tuple[int, int]):
        component = self._pairs.get(members)
        if component is None:
            component = self._factory(members)
            if len(self._pairs) < self._pair_cap:
                self._pairs[members] = component
        return component

    def _resync(self, state: EnvironmentState) -> None:
        """Rebuild the maintained structure from a full state."""
        num_agents = self._topology.num_agents
        self._enabled = set(state.enabled_agents)
        if self._static_adjacency is None:
            adjacency: dict[int, set[int]] = {
                agent: set() for agent in self._topology.agent_ids
            }
            for a, b in state.available_edges:
                adjacency[a].add(b)
                adjacency[b].add(a)
            self._avail_adjacency = adjacency
        factory = self._factory
        component_of: list[object | None] = [None] * num_agents
        min_slot: list[object | None] = [None] * num_agents
        present = bytearray(num_agents)
        multi_mins: set[int] = set()
        for members in connected_component_tuples(
            state.enabled_agents, state.effective_edges()
        ):
            key = members[0]
            size = len(members)
            if size == 1:
                component = self._singleton(key)
            elif size == 2:
                component = self._pair(members)
                multi_mins.add(key)
            else:
                component = factory(members)
                multi_mins.add(key)
            min_slot[key] = component
            present[key] = 1
            for member in members:
                component_of[member] = component
        self._component_of = component_of
        self._min_slot = min_slot
        self._present = present
        self._multi_mins = multi_mins
        self._invalidate_round_views()
        self._synced = True

    def _apply_delta(self, delta: EnvironmentDelta, state: EnvironmentState) -> None:
        enabled = self._enabled
        adjacency = self._avail_adjacency
        static_adjacency = self._static_adjacency
        dynamic = static_adjacency is None
        component_of = self._component_of
        min_slot = self._min_slot
        present = self._present
        multi_mins = self._multi_mins
        singletons = self._singletons
        factory = self._factory
        pairs_cache = self._pairs
        pair_cap = self._pair_cap
        changed = False

        # -- removals: edges down, agents disabled ------------------------
        # A removed edge was *effective* iff both endpoints currently
        # belong to the same component; only then can it affect
        # connectivity.  An effective edge leaving a two-agent component
        # splits it into two interned singletons directly; anything larger
        # is dissolved for the localized re-walk below.
        dissolved: set[int] = set()  # min members of components to re-walk
        dirty: list = []
        for a, b in delta.edges_down:
            if dynamic:
                adjacency[a].discard(b)
                adjacency[b].discard(a)
            component = component_of[a]
            if component is None or component_of[b] is not component:
                continue
            members = component.members
            if len(members) == 2:
                changed = True
                single_a = singletons[a]
                if single_a is None:
                    single_a = self._singleton(a)
                single_b = singletons[b]
                if single_b is None:
                    single_b = self._singleton(b)
                component_of[a] = single_a
                component_of[b] = single_b
                min_slot[a] = single_a
                min_slot[b] = single_b
                present[a] = 1
                present[b] = 1
                multi_mins.discard(members[0])
            else:
                key = members[0]
                if key not in dissolved:
                    dissolved.add(key)
                    dirty.append(component)
        for agent in delta.agents_disabled:
            component = component_of[agent]
            if component is not None:
                members = component.members
                if len(members) == 1:
                    changed = True
                    min_slot[agent] = None
                    present[agent] = 0
                else:
                    key = members[0]
                    if key not in dissolved:
                        dissolved.add(key)
                        dirty.append(component)
                component_of[agent] = None
            enabled.discard(agent)

        # -- localized rebuild of the dissolved components ----------------
        # Deletions cannot connect anything new, so a walk from the
        # surviving members of a dissolved component stays inside that
        # component's old vertex set: the rebuild is bounded by the
        # components the round actually touched.
        if dirty:
            changed = True
            pool: list[int] = []
            previous: dict[int, object] = {}
            for component in dirty:
                key = component.members[0]
                if min_slot[key] is component:
                    min_slot[key] = None
                    present[key] = 0
                multi_mins.discard(key)
                previous[key] = component
                for member in component.members:
                    if component_of[member] is component:
                        pool.append(member)
            if not dynamic:
                # Static-adjacency walk: filter the fixed topology
                # adjacency through the state's available-edge set.  The
                # walk must see the pre-insertion graph, so edges that
                # came up this round are explicitly excluded.
                available = state.available_edges
                arrived = delta.edges_up
                if not isinstance(arrived, (set, frozenset)):
                    arrived = set(arrived)
            seen: set[int] = set()
            for start in pool:
                if start in seen:
                    continue
                seen.add(start)
                stack = [start]
                members_list = [start]
                if dynamic:
                    while stack:
                        for neighbor in adjacency[stack.pop()]:
                            if neighbor in enabled and neighbor not in seen:
                                seen.add(neighbor)
                                members_list.append(neighbor)
                                stack.append(neighbor)
                else:
                    while stack:
                        vertex = stack.pop()
                        for neighbor in static_adjacency[vertex]:
                            if neighbor in enabled and neighbor not in seen:
                                edge = (
                                    (vertex, neighbor)
                                    if vertex < neighbor
                                    else (neighbor, vertex)
                                )
                                if edge in available and edge not in arrived:
                                    seen.add(neighbor)
                                    members_list.append(neighbor)
                                    stack.append(neighbor)
                if len(members_list) == 1:
                    component = singletons[start]
                    if component is None:
                        component = self._singleton(start)
                    min_slot[start] = component
                    present[start] = 1
                    component_of[start] = component
                    continue
                members_list.sort()
                member_tuple = tuple(members_list)
                key = member_tuple[0]
                # A component that lost an edge without splitting (or
                # shrinking) keeps its identity — and its group object.
                component = previous.get(key)
                if component is None or component.members != member_tuple:
                    component = (
                        self._pair(member_tuple)
                        if len(member_tuple) == 2
                        else factory(member_tuple)
                    )
                min_slot[key] = component
                present[key] = 1
                multi_mins.add(key)
                for member in member_tuple:
                    component_of[member] = component

        # -- insertions: agents enabled, edges up -------------------------
        # Every edge that becomes effective this round is an insertion:
        # a new available edge between enabled agents, or an existing
        # available edge revived by an endpoint waking up.  An edge
        # joining two lone agents — the dominant sparse case — merges
        # them directly; everything else queues for the union pass.
        pending: list[Edge] = []
        agents_enabled = delta.agents_enabled
        if agents_enabled:
            changed = True
            for agent in agents_enabled:
                enabled.add(agent)
            for agent in agents_enabled:
                component = singletons[agent]
                if component is None:
                    component = self._singleton(agent)
                component_of[agent] = component
                min_slot[agent] = component
                present[agent] = 1
                if dynamic:
                    for neighbor in adjacency[agent]:
                        if neighbor in enabled:
                            pending.append(
                                (agent, neighbor)
                                if agent < neighbor
                                else (neighbor, agent)
                            )
                else:
                    # The scan over the state's available edges may also
                    # pick up edges that came up this round; the union
                    # pass treats the duplicate insertion as a no-op.
                    available = state.available_edges
                    for neighbor in static_adjacency[agent]:
                        if neighbor in enabled:
                            edge = (
                                (agent, neighbor)
                                if agent < neighbor
                                else (neighbor, agent)
                            )
                            if edge in available:
                                pending.append(edge)
        for a, b in delta.edges_up:
            if dynamic:
                adjacency[a].add(b)
                adjacency[b].add(a)
            if a not in enabled or b not in enabled:
                continue
            component_a = component_of[a]
            component_b = component_of[b]
            if component_a is component_b:
                continue
            if len(component_a.members) == 1 and len(component_b.members) == 1:
                changed = True
                key = (a, b) if a < b else (b, a)
                # _pair() inlined: this runs once per merged edge on the
                # hottest delta path, and the method call costs as much as
                # the lookup.  Keep in sync with _pair().
                pair = pairs_cache.get(key)
                if pair is None:
                    pair = factory(key)
                    if len(pairs_cache) < pair_cap:
                        pairs_cache[key] = pair
                low = key[0]
                high = key[1]
                min_slot[low] = pair
                min_slot[high] = None
                present[high] = 0
                multi_mins.add(low)
                component_of[a] = pair
                component_of[b] = pair
            else:
                pending.append((a, b))

        # -- unions (union by size, deferred materialization) -------------
        # Roots accumulate member lists; each absorbed component's members
        # move exactly once per merge, and the final sorted tuple is built
        # once per merged component, so a cascade of unions costs
        # O(total · log) rather than quadratic re-tupling.
        if pending:
            parent: dict[int, object] = {}
            merged_members: dict[int, list[int]] = {}

            def find(component):
                key = component.members[0]
                root = parent.get(key)
                if root is None:
                    return component
                while True:
                    next_root = parent.get(root.members[0])
                    if next_root is None:
                        break
                    root = next_root
                parent[key] = root
                return root

            touched: list = []
            for a, b in pending:
                root_a = find(component_of[a])
                root_b = find(component_of[b])
                if root_a is root_b:
                    continue
                changed = True
                key_a, key_b = root_a.members[0], root_b.members[0]
                list_a = merged_members.get(key_a)
                list_b = merged_members.get(key_b)
                size_a = len(list_a) if list_a is not None else len(root_a.members)
                size_b = len(list_b) if list_b is not None else len(root_b.members)
                if size_a < size_b:
                    root_a, root_b = root_b, root_a
                    key_a, key_b = key_b, key_a
                    list_a, list_b = list_b, list_a
                if list_a is None:
                    list_a = list(root_a.members)
                    touched.append(root_a)
                list_a.extend(list_b if list_b is not None else root_b.members)
                if list_b is not None:
                    del merged_members[key_b]
                else:
                    touched.append(root_b)
                merged_members[key_a] = list_a
                parent[key_b] = root_a

            if merged_members:
                for component in touched:
                    key = component.members[0]
                    min_slot[key] = None
                    present[key] = 0
                    multi_mins.discard(key)
                for members_list in merged_members.values():
                    members_list.sort()
                    member_tuple = tuple(members_list)
                    key = member_tuple[0]
                    component = (
                        self._pair(member_tuple)
                        if len(member_tuple) == 2
                        else factory(member_tuple)
                    )
                    min_slot[key] = component
                    present[key] = 1
                    multi_mins.add(key)
                    for member in member_tuple:
                        component_of[member] = component

        if changed:
            self._invalidate_round_views()
