"""The environment half of the paper's system model.

A system state is a pair ``(G, S)``: the environment state ``G`` and the
multiset ``S`` of agent states.  The environment decides, at every moment,
which agents are *enabled* (able to change state) and which communication
links are *available*; it never reads or writes agent state.  Designers
cannot choose the environment's behaviour — they can only assume a set
``Q`` of predicates each of which holds infinitely often (assumption (2)).

This module defines:

* :class:`Topology` — the fixed communication graph ``E`` over which the
  paper's predicate sets ``Q_E`` are defined (``Q_e`` = "edge *e* is
  available");
* :class:`EnvironmentState` — one concrete ``G``: the set of enabled agents
  and the set of currently available edges, together with the group
  structure (connected components) it induces;
* :class:`Environment` — the abstract driver that produces a (possibly
  adversarial, possibly random) sequence of environment states.

Concrete environments live in :mod:`repro.environment.dynamics`,
:mod:`repro.environment.adversary` and :mod:`repro.environment.mobility`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.errors import EnvironmentError_

__all__ = ["Topology", "EnvironmentState", "Environment"]

Edge = tuple[int, int]


def _normalize_edge(a: int, b: int) -> Edge:
    """Store undirected edges with the smaller endpoint first."""
    if a == b:
        raise EnvironmentError_(f"self-loop edge ({a}, {b}) is not allowed")
    return (a, b) if a < b else (b, a)


class Topology:
    """The fixed communication graph ``(A, E)`` of a system.

    The vertex set is ``range(num_agents)``; edges are undirected pairs of
    distinct agents.  The paper's environment assumption ``Q_E`` says every
    edge of ``E`` is available infinitely often; which ``E`` suffices
    depends on the problem (connected for minimum/hull, complete for sum,
    a line in index order for sorting).
    """

    def __init__(self, num_agents: int, edges: Iterable[tuple[int, int]]):
        if num_agents <= 0:
            raise EnvironmentError_("a topology needs at least one agent")
        self.num_agents = num_agents
        normalized = set()
        for a, b in edges:
            if not (0 <= a < num_agents and 0 <= b < num_agents):
                raise EnvironmentError_(
                    f"edge ({a}, {b}) references an agent outside 0..{num_agents - 1}"
                )
            normalized.add(_normalize_edge(a, b))
        self.edges: frozenset[Edge] = frozenset(normalized)
        self._adjacency: dict[int, frozenset[int]] | None = None

    # -- queries --------------------------------------------------------------

    @property
    def agent_ids(self) -> range:
        """The agent identifiers ``0 .. num_agents - 1``."""
        return range(self.num_agents)

    def adjacency(self) -> dict[int, frozenset[int]]:
        """Return the adjacency map (computed once and cached)."""
        if self._adjacency is None:
            neighbors: dict[int, set[int]] = {a: set() for a in self.agent_ids}
            for a, b in self.edges:
                neighbors[a].add(b)
                neighbors[b].add(a)
            self._adjacency = {a: frozenset(ns) for a, ns in neighbors.items()}
        return self._adjacency

    def neighbors(self, agent: int) -> frozenset[int]:
        """Return the neighbours of ``agent`` in the fixed graph."""
        return self.adjacency()[agent]

    def has_edge(self, a: int, b: int) -> bool:
        """Return True when the undirected edge ``{a, b}`` is in the graph."""
        if a == b:
            return False
        return _normalize_edge(a, b) in self.edges

    def is_connected(self) -> bool:
        """Return True when the fixed graph is connected."""
        components = connected_components(set(self.agent_ids), self.edges)
        return len(components) <= 1

    def is_complete(self) -> bool:
        """Return True when every pair of agents is joined by an edge."""
        expected = self.num_agents * (self.num_agents - 1) // 2
        return len(self.edges) == expected

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology(num_agents={self.num_agents}, edges={len(self.edges)})"


def connected_component_tuples(
    agents: Iterable[int], edges: Iterable[Edge]
) -> list[tuple[int, ...]]:
    """Connected components as sorted member tuples, ordered by smallest member.

    The workhorse behind :func:`connected_components` (which wraps the
    tuples in frozensets) and the maximal-groups scheduler (which feeds
    them to :class:`~repro.agents.group.Group` directly, avoiding a
    re-sort per component).

    The implementation only walks vertices actually touched by an edge;
    every other agent is a singleton component, emitted via a sorted
    merge.  On sparse rounds (few available edges, many agents) this
    makes the per-round cost proportional to the active part of the
    graph, not to the whole agent population.
    """
    agent_set = set(agents)
    adjacency: dict[int, list[int]] = {}
    for a, b in edges:
        if a in agent_set and b in agent_set:
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)

    connected: list[tuple[int, ...]] = []
    visited: set[int] = set()
    for start in adjacency:
        if start in visited:
            continue
        visited.add(start)
        stack = [start]
        members = [start]
        while stack:
            for neighbor in adjacency[stack.pop()]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    members.append(neighbor)
                    stack.append(neighbor)
        members.sort()
        connected.append(tuple(members))
    connected.sort()

    singletons = sorted(agent_set.difference(adjacency))
    if not singletons:
        return connected
    if not connected:
        return [(agent,) for agent in singletons]

    # Merge the edge-connected components and the singleton components
    # into one list ordered by smallest member.
    result: list[tuple[int, ...]] = []
    position = 0
    count = len(singletons)
    for component in connected:
        smallest = component[0]
        while position < count and singletons[position] < smallest:
            result.append((singletons[position],))
            position += 1
        result.append(component)
    for agent in singletons[position:]:
        result.append((agent,))
    return result


def connected_components(
    agents: Iterable[int], edges: Iterable[Edge]
) -> list[frozenset[int]]:
    """Return the connected components of the graph restricted to ``agents``.

    Edges whose endpoints are not both in ``agents`` are ignored.  The
    result is sorted by smallest member so that the group structure of an
    environment state is deterministic.
    """
    return [
        frozenset(members)
        for members in connected_component_tuples(agents, edges)
    ]


@dataclass(frozen=True)
class EnvironmentState:
    """One environment state ``G``: who is enabled and who can talk to whom."""

    enabled_agents: frozenset[int]
    available_edges: frozenset[Edge]
    round_index: int = 0

    def effective_edges(self) -> frozenset[Edge]:
        """Edges whose both endpoints are enabled (only these support steps)."""
        enabled = self.enabled_agents
        return frozenset(
            edge
            for edge in self.available_edges
            if edge[0] in enabled and edge[1] in enabled
        )

    def communication_groups(self) -> list[frozenset[int]]:
        """Connected components of enabled agents under available edges.

        Disabled agents are excluded entirely: a disabled agent executes no
        actions and does not change state, so it belongs to no acting
        group this round.
        """
        return connected_components(self.enabled_agents, self.effective_edges())

    def communication_group_tuples(self) -> list[tuple[int, ...]]:
        """The communication groups as sorted member tuples (hot-path form).

        Same components, same order as :meth:`communication_groups`, but
        each component is a sorted tuple — the exact member layout
        :class:`~repro.agents.group.Group` stores — so schedulers can
        build their groups without materialising a frozenset per
        component."""
        return connected_component_tuples(self.enabled_agents, self.effective_edges())

    def can_communicate(self, a: int, b: int) -> bool:
        """Return True when agents ``a`` and ``b`` are enabled and share an
        available edge."""
        if a == b:
            return a in self.enabled_agents
        if a not in self.enabled_agents or b not in self.enabled_agents:
            return False
        return _normalize_edge(a, b) in self.available_edges

    def is_edge_available(self, a: int, b: int) -> bool:
        """Return True when the edge ``{a, b}`` is available this round
        (regardless of whether the endpoints are enabled)."""
        return _normalize_edge(a, b) in self.available_edges


class Environment(ABC):
    """Abstract producer of environment states.

    Subclasses model concrete dynamics: random churn, adversaries,
    mobility, and so on.  The simulator calls :meth:`advance` once per
    round; an environment may be deterministic or may use the supplied
    random generator.

    The fixed :class:`Topology` is the graph ``E`` over which the
    environment assumption ``Q_E`` is stated — in every environment
    implemented here the set of available edges is a subset of the
    topology's edges.
    """

    def __init__(self, topology: Topology):
        self.topology = topology

    @property
    def num_agents(self) -> int:
        """Number of agents in the system."""
        return self.topology.num_agents

    @abstractmethod
    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        """Produce the environment state for round ``round_index``."""

    def reset(self) -> None:
        """Reset any internal state before a new simulation run.

        The default implementation does nothing; stateful environments
        (mobility, adversaries with epochs) override it.
        """

    def describe(self) -> str:
        """One-line description used in benchmark reports."""
        return type(self).__name__

    # -- fairness -------------------------------------------------------------

    def fairness_predicates(self) -> Sequence[str]:
        """Human-readable list of the ``Q`` predicates this environment
        guarantees to satisfy infinitely often.

        Concrete environments override this to document (and allow tests to
        assert) which of the paper's assumptions they meet.
        """
        return ()
