"""The environment half of the paper's system model.

A system state is a pair ``(G, S)``: the environment state ``G`` and the
multiset ``S`` of agent states.  The environment decides, at every moment,
which agents are *enabled* (able to change state) and which communication
links are *available*; it never reads or writes agent state.  Designers
cannot choose the environment's behaviour — they can only assume a set
``Q`` of predicates each of which holds infinitely often (assumption (2)).

This module defines:

* :class:`Topology` — the fixed communication graph ``E`` over which the
  paper's predicate sets ``Q_E`` are defined (``Q_e`` = "edge *e* is
  available");
* :class:`EnvironmentState` — one concrete ``G``: the set of enabled agents
  and the set of currently available edges, together with the group
  structure (connected components) it induces.  Derived views
  (:meth:`EnvironmentState.effective_edges`, the communication groups) are
  computed lazily and memoized on the frozen state, so repeated queries in
  one round never recompute;
* :class:`EnvironmentDelta` — what changed between two consecutive
  environment states (edges up/down, agents enabled/disabled).
  Environments that can report their churn as a delta set
  :attr:`Environment.reports_deltas` and implement
  :meth:`Environment.advance_with_delta`, which lets the simulation layer
  maintain connectivity incrementally
  (:mod:`repro.environment.connectivity`) instead of re-walking the whole
  graph every round;
* :class:`Environment` — the abstract driver that produces a (possibly
  adversarial, possibly random) sequence of environment states.

Concrete environments live in :mod:`repro.environment.dynamics`,
:mod:`repro.environment.adversary` and :mod:`repro.environment.mobility`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.errors import EnvironmentError_

__all__ = [
    "Topology",
    "EnvironmentState",
    "EnvironmentDelta",
    "EMPTY_DELTA",
    "Environment",
]

Edge = tuple[int, int]


def _normalize_edge(a: int, b: int) -> Edge:
    """Store undirected edges with the smaller endpoint first."""
    if a == b:
        raise EnvironmentError_(f"self-loop edge ({a}, {b}) is not allowed")
    return (a, b) if a < b else (b, a)


class Topology:
    """The fixed communication graph ``(A, E)`` of a system.

    The vertex set is ``range(num_agents)``; edges are undirected pairs of
    distinct agents.  The paper's environment assumption ``Q_E`` says every
    edge of ``E`` is available infinitely often; which ``E`` suffices
    depends on the problem (connected for minimum/hull, complete for sum,
    a line in index order for sorting).
    """

    def __init__(self, num_agents: int, edges: Iterable[tuple[int, int]]):
        if num_agents <= 0:
            raise EnvironmentError_("a topology needs at least one agent")
        self.num_agents = num_agents
        normalized = set()
        for a, b in edges:
            if not (0 <= a < num_agents and 0 <= b < num_agents):
                raise EnvironmentError_(
                    f"edge ({a}, {b}) references an agent outside 0..{num_agents - 1}"
                )
            normalized.add(_normalize_edge(a, b))
        self.edges: frozenset[Edge] = frozenset(normalized)
        self._adjacency: dict[int, frozenset[int]] | None = None
        self._is_connected: bool | None = None

    # -- queries --------------------------------------------------------------

    @property
    def agent_ids(self) -> range:
        """The agent identifiers ``0 .. num_agents - 1``."""
        return range(self.num_agents)

    def adjacency(self) -> dict[int, frozenset[int]]:
        """Return the adjacency map (computed once and cached)."""
        if self._adjacency is None:
            neighbors: dict[int, set[int]] = {a: set() for a in self.agent_ids}
            for a, b in self.edges:
                neighbors[a].add(b)
                neighbors[b].add(a)
            self._adjacency = {a: frozenset(ns) for a, ns in neighbors.items()}
        return self._adjacency

    def neighbors(self, agent: int) -> frozenset[int]:
        """Return the neighbours of ``agent`` in the fixed graph."""
        return self.adjacency()[agent]

    def has_edge(self, a: int, b: int) -> bool:
        """Return True when the undirected edge ``{a, b}`` is in the graph."""
        if a == b:
            return False
        return _normalize_edge(a, b) in self.edges

    def is_connected(self) -> bool:
        """Return True when the fixed graph is connected.

        The verdict is computed once and cached on the immutable topology:
        spec validation and the baselines query it repeatedly, and the
        BFS over a large graph is not free.
        """
        if self._is_connected is None:
            components = connected_components(set(self.agent_ids), self.edges)
            self._is_connected = len(components) <= 1
        return self._is_connected

    def is_complete(self) -> bool:
        """Return True when every pair of agents is joined by an edge."""
        expected = self.num_agents * (self.num_agents - 1) // 2
        return len(self.edges) == expected

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology(num_agents={self.num_agents}, edges={len(self.edges)})"


def connected_component_tuples(
    agents: Iterable[int], edges: Iterable[Edge]
) -> list[tuple[int, ...]]:
    """Connected components as sorted member tuples, ordered by smallest member.

    The workhorse behind :func:`connected_components` (which wraps the
    tuples in frozensets) and the maximal-groups scheduler (which feeds
    them to :class:`~repro.agents.group.Group` directly, avoiding a
    re-sort per component).

    The implementation only walks vertices actually touched by an edge;
    every other agent is a singleton component, emitted via a sorted
    merge.  On sparse rounds (few available edges, many agents) this
    makes the per-round cost proportional to the active part of the
    graph, not to the whole agent population.
    """
    agent_set = set(agents)
    adjacency: dict[int, list[int]] = {}
    for a, b in edges:
        if a in agent_set and b in agent_set:
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)

    connected: list[tuple[int, ...]] = []
    visited: set[int] = set()
    for start in adjacency:
        if start in visited:
            continue
        visited.add(start)
        stack = [start]
        members = [start]
        while stack:
            for neighbor in adjacency[stack.pop()]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    members.append(neighbor)
                    stack.append(neighbor)
        members.sort()
        connected.append(tuple(members))
    connected.sort()

    singletons = sorted(agent_set.difference(adjacency))
    if not singletons:
        return connected
    if not connected:
        return [(agent,) for agent in singletons]

    # Merge the edge-connected components and the singleton components
    # into one list ordered by smallest member.
    result: list[tuple[int, ...]] = []
    position = 0
    count = len(singletons)
    for component in connected:
        smallest = component[0]
        while position < count and singletons[position] < smallest:
            result.append((singletons[position],))
            position += 1
        result.append(component)
    for agent in singletons[position:]:
        result.append((agent,))
    return result


def connected_components(
    agents: Iterable[int], edges: Iterable[Edge]
) -> list[frozenset[int]]:
    """Return the connected components of the graph restricted to ``agents``.

    Edges whose endpoints are not both in ``agents`` are ignored.  The
    result is sorted by smallest member so that the group structure of an
    environment state is deterministic.
    """
    return [
        frozenset(members)
        for members in connected_component_tuples(agents, edges)
    ]


class EnvironmentDelta:
    """What changed from one environment state to the next.

    A delta is the exact symmetric difference between two consecutive
    states: edges that became available / unavailable and agents that
    became enabled / disabled.  Environments that know their own churn
    report one per round (:meth:`Environment.advance_with_delta`), which
    is what lets the connectivity layer update communication groups in
    O(|delta|) instead of re-walking the graph.

    Field order is not semantically meaningful; each field may hold any
    iterable of edges / agent ids (consumers only iterate and test
    emptiness).
    """

    __slots__ = ("edges_down", "edges_up", "agents_disabled", "agents_enabled")

    def __init__(
        self,
        edges_down: Iterable[Edge] = (),
        edges_up: Iterable[Edge] = (),
        agents_disabled: Iterable[int] = (),
        agents_enabled: Iterable[int] = (),
    ):
        self.edges_down = edges_down
        self.edges_up = edges_up
        self.agents_disabled = agents_disabled
        self.agents_enabled = agents_enabled

    @property
    def is_empty(self) -> bool:
        """True when nothing changed (the state is identical to the last)."""
        return not (
            self.edges_down
            or self.edges_up
            or self.agents_disabled
            or self.agents_enabled
        )

    @classmethod
    def between(
        cls,
        previous_enabled: frozenset[int],
        previous_edges: frozenset[Edge],
        enabled: frozenset[int],
        edges: frozenset[Edge],
    ) -> "EnvironmentDelta":
        """Delta between two (enabled, available-edges) snapshots.

        Returns the shared :data:`EMPTY_DELTA` when nothing changed, so
        quiet rounds allocate nothing.
        """
        if previous_enabled is enabled or previous_enabled == enabled:
            agents_disabled: Iterable[int] = ()
            agents_enabled: Iterable[int] = ()
        else:
            agents_disabled = previous_enabled - enabled
            agents_enabled = enabled - previous_enabled
        if previous_edges is edges or previous_edges == edges:
            edges_down: Iterable[Edge] = ()
            edges_up: Iterable[Edge] = ()
        else:
            edges_down = previous_edges - edges
            edges_up = edges - previous_edges
        if not (agents_disabled or agents_enabled or edges_down or edges_up):
            return EMPTY_DELTA
        return cls(edges_down, edges_up, agents_disabled, agents_enabled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EnvironmentDelta(-{len(tuple(self.edges_down))}e "
            f"+{len(tuple(self.edges_up))}e "
            f"-{len(tuple(self.agents_disabled))}a "
            f"+{len(tuple(self.agents_enabled))}a)"
        )


#: The delta of a round in which nothing changed.
EMPTY_DELTA = EnvironmentDelta()


@dataclass(frozen=True)
class EnvironmentState:
    """One environment state ``G``: who is enabled and who can talk to whom.

    The state itself is two frozensets; everything derived from them —
    the effective edges, the communication groups in either representation
    — is a *lazy view*: computed on first request and memoized on the
    instance (via ``object.__setattr__``, the frozen-dataclass idiom), so
    schedulers, engines and probes can all query the same state without
    repeating the filter or the component walk.

    The simulation layer's connectivity tracker
    (:class:`repro.environment.connectivity.ConnectivityTracker`) can
    pre-install maintained component views on a state, in which case the
    group accessors serve those instead of computing from scratch; the
    installed views are always equal to what the from-scratch computation
    would produce (pinned by the differential test suite).
    """

    enabled_agents: frozenset[int]
    available_edges: frozenset[Edge]
    round_index: int = 0

    def effective_edges(self) -> frozenset[Edge]:
        """Edges whose both endpoints are enabled (only these support steps).

        Computed once per state and memoized: ``communication_groups()``,
        ``communication_group_tuples()`` and every ``can_communicate``-style
        consumer share one filtered set instead of rebuilding it per call.
        """
        memo = self.__dict__.get("_effective_edges")
        if memo is None:
            enabled = self.enabled_agents
            memo = frozenset(
                edge
                for edge in self.available_edges
                if edge[0] in enabled and edge[1] in enabled
            )
            object.__setattr__(self, "_effective_edges", memo)
        return memo

    def communication_groups(self) -> list[frozenset[int]]:
        """Connected components of enabled agents under available edges.

        Disabled agents are excluded entirely: a disabled agent executes no
        actions and does not change state, so it belongs to no acting
        group this round.
        """
        memo = self.__dict__.get("_communication_groups")
        if memo is None:
            memo = [
                frozenset(members) for members in self.communication_group_tuples()
            ]
            object.__setattr__(self, "_communication_groups", memo)
        return memo

    def communication_group_tuples(self) -> list[tuple[int, ...]]:
        """The communication groups as sorted member tuples (hot-path form).

        Same components, same order as :meth:`communication_groups`, but
        each component is a sorted tuple — the exact member layout
        :class:`~repro.agents.group.Group` stores — so schedulers can
        build their groups without materialising a frozenset per
        component."""
        memo = self.__dict__.get("_component_tuples")
        if memo is None:
            maintained = self.__dict__.get("_maintained_components")
            if maintained is not None:
                memo = maintained.component_tuples(self)
            else:
                memo = connected_component_tuples(
                    self.enabled_agents, self.effective_edges()
                )
            object.__setattr__(self, "_component_tuples", memo)
        return memo

    def maintained_scheduler_groups(self):
        """The maintained, interned per-component group objects, or None.

        Populated (indirectly) by the connectivity tracker when the
        simulation runs with an incremental environment; schedulers that
        act on whole components use it to reuse group objects for
        components unchanged since the previous round.  Callers must treat
        the returned list as read-only.
        """
        maintained = self.__dict__.get("_maintained_components")
        if maintained is None:
            return None
        return maintained.scheduler_groups(self)

    def _adopt_view_memos(self, previous: "EnvironmentState") -> None:
        """Copy ``previous``'s memoized derived views onto this state.

        Only valid when this state is known to be semantically identical
        to ``previous`` (an empty :class:`EnvironmentDelta` between them);
        the engines use it so that quiet rounds never recompute a view
        some earlier round already paid for."""
        source = previous.__dict__
        own = self.__dict__
        for key in (
            "_effective_edges",
            "_communication_groups",
            "_component_tuples",
            "_maintained_components",
        ):
            if key not in own:
                memo = source.get(key)
                if memo is not None:
                    object.__setattr__(self, key, memo)

    def can_communicate(self, a: int, b: int) -> bool:
        """Return True when agents ``a`` and ``b`` are enabled and share an
        available edge."""
        if a == b:
            return a in self.enabled_agents
        if a not in self.enabled_agents or b not in self.enabled_agents:
            return False
        return _normalize_edge(a, b) in self.available_edges

    def is_edge_available(self, a: int, b: int) -> bool:
        """Return True when the edge ``{a, b}`` is available this round
        (regardless of whether the endpoints are enabled)."""
        return _normalize_edge(a, b) in self.available_edges


class Environment(ABC):
    """Abstract producer of environment states.

    Subclasses model concrete dynamics: random churn, adversaries,
    mobility, and so on.  The simulator calls :meth:`advance` once per
    round; an environment may be deterministic or may use the supplied
    random generator.

    The fixed :class:`Topology` is the graph ``E`` over which the
    environment assumption ``Q_E`` is stated — in every environment
    implemented here the set of available edges is a subset of the
    topology's edges.
    """

    #: True when this environment implements :meth:`advance_with_delta`
    #: with real per-round deltas.  The engines only attempt incremental
    #: connectivity maintenance for environments that declare it; every
    #: other environment keeps the classic from-scratch path.
    reports_deltas: bool = False

    def __init__(self, topology: Topology):
        self.topology = topology

    @property
    def num_agents(self) -> int:
        """Number of agents in the system."""
        return self.topology.num_agents

    @abstractmethod
    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        """Produce the environment state for round ``round_index``."""

    def advance_with_delta(
        self, round_index: int, rng: random.Random
    ) -> tuple[EnvironmentState, EnvironmentDelta | None]:
        """Produce the next state together with the delta from the last one.

        The state (and every random draw behind it) is exactly what
        :meth:`advance` would have produced — reporting a delta never
        changes the random stream, so seeded runs are byte-identical in
        either mode.  A ``None`` delta means "unknown": the first round
        after construction or :meth:`reset`, or an environment that cannot
        (or does not care to) track its own churn.  Consumers treat None
        as "resynchronize from the full state".

        The default implementation delegates to :meth:`advance` and always
        reports None.
        """
        return self.advance(round_index, rng), None

    def reset(self) -> None:
        """Reset any internal state before a new simulation run.

        The default implementation does nothing; stateful environments
        (mobility, adversaries with epochs) override it.
        """

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """The environment's mutable evolution state as JSON-safe data.

        Whatever future :meth:`advance` calls depend on beyond the
        construction parameters and the round index must be here: the
        Markov chain's current up/down sets, mobile agents' positions and
        batteries.  The default is empty — correct for every environment
        whose states are a pure function of the round index (static, duty
        cycles, the adversaries) or of fresh per-round draws (random
        churn).  Delta-reporting bases (the previous round's snapshot) are
        deliberately *not* state: :meth:`load_state` drops them, the next
        ``advance_with_delta`` reports None, and the consumer
        resynchronizes — same states, same random draws, same results.
        """
        return {}

    def load_state(self, state: Mapping) -> None:
        """Restore :meth:`state_dict` output into this environment.

        The restored environment continues at identical random draw order:
        after this call, ``advance_with_delta(round_index, rng)`` produces
        exactly the states the uninterrupted environment would have.  The
        default implementation resets (which is the whole restoration for
        stateless environments and clears the delta base for all);
        stateful overrides call it first, then apply their state.
        """
        self.reset()

    def describe(self) -> str:
        """One-line description used in benchmark reports."""
        return type(self).__name__

    # -- fairness -------------------------------------------------------------

    def fairness_predicates(self) -> Sequence[str]:
        """Human-readable list of the ``Q`` predicates this environment
        guarantees to satisfy infinitely often.

        Concrete environments override this to document (and allow tests to
        assert) which of the paper's assumptions they meet.
        """
        return ()
