"""Stochastic environment dynamics.

These environments model the benign-but-unreliable settings the paper's
introduction motivates: links and agents go up and down because of noise,
power loss, interference or mobility.  None of them is adversarial (see
:mod:`repro.environment.adversary` for that); their randomness guarantees
— with probability one — that every edge of the underlying topology is
available infinitely often, i.e. the paper's assumption ``Q_E`` holds, so
the self-similar algorithms converge with probability one and merely take
longer when availability is scarce ("speed up or slow down depending on
the resources available").
"""

from __future__ import annotations

import math
import random

from ..core.errors import EnvironmentError_
from ..registry import register_environment
from .base import (
    EMPTY_DELTA,
    Environment,
    EnvironmentDelta,
    EnvironmentState,
    Topology,
)

__all__ = [
    "StaticEnvironment",
    "RandomChurnEnvironment",
    "MarkovChurnEnvironment",
    "PeriodicDutyCycleEnvironment",
]


@register_environment("static")
class StaticEnvironment(Environment):
    """A benign environment: every agent enabled, every edge always available.

    This is the degenerate case in which a dynamic distributed system
    behaves like a classical static one; baselines such as the repeated
    global snapshot are at their best here.

    The enabled set never changes, so it is built once and shared by every
    round's state, and :meth:`advance_with_delta` reports an empty delta
    after the first round — a static run's connectivity is computed
    exactly once.
    """

    reports_deltas = True

    def __init__(self, topology: Topology):
        super().__init__(topology)
        self._all_agents: frozenset[int] | None = None
        self._last_round: int | None = None

    def reset(self) -> None:
        self._last_round = None

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        if self._all_agents is None:
            self._all_agents = frozenset(self.topology.agent_ids)
        return EnvironmentState(
            enabled_agents=self._all_agents,
            available_edges=self.topology.edges,
            round_index=round_index,
        )

    def advance_with_delta(self, round_index, rng):
        state = self.advance(round_index, rng)
        delta = (
            EMPTY_DELTA if self._last_round == round_index - 1 else None
        )
        self._last_round = round_index
        return state, delta

    def fairness_predicates(self):
        return tuple(f"edge {edge} available" for edge in sorted(self.topology.edges))

    def describe(self) -> str:
        return "static (all agents and edges always available)"


@register_environment("churn")
class RandomChurnEnvironment(Environment):
    """Independent per-round availability of edges and agents.

    Each round, every topology edge is available independently with
    probability ``edge_up_probability`` and every agent is enabled
    independently with probability ``agent_up_probability``.  With both
    probabilities positive, every edge is available (with both endpoints
    enabled) infinitely often with probability one, so ``Q_E`` holds.

    Parameters
    ----------
    topology:
        The underlying communication graph ``E``.
    edge_up_probability:
        Probability that an edge is available in a given round.
    agent_up_probability:
        Probability that an agent is enabled in a given round.
    """

    reports_deltas = True

    def __init__(
        self,
        topology: Topology,
        edge_up_probability: float = 0.5,
        agent_up_probability: float = 1.0,
    ):
        super().__init__(topology)
        for name, value in (
            ("edge_up_probability", edge_up_probability),
            ("agent_up_probability", agent_up_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise EnvironmentError_(f"{name} must be in [0, 1], got {value}")
        self.edge_up_probability = edge_up_probability
        self.agent_up_probability = agent_up_probability
        # Fixed iteration sequence for the per-round draws.  tuple() of a
        # frozenset preserves that frozenset's iteration order, so the
        # random stream is identical to iterating topology.edges directly
        # — just without re-walking the set's hash table every round.
        self._edge_sequence = tuple(self.topology.edges)
        # Shared all-enabled set for rounds in which every agent's draw
        # passes (every round when agent_up_probability is 1).  Built by
        # the same ascending-id insertion order a fresh construction uses,
        # so sharing it never changes iteration order.
        self._all_agents = frozenset(self.topology.agent_ids)
        self._previous: tuple[frozenset, frozenset] | None = None

    def reset(self) -> None:
        self._previous = None

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        state, _ = self._advance(round_index, rng)
        self._previous = None
        return state

    def advance_with_delta(self, round_index, rng):
        state, previous = self._advance(round_index, rng)
        if previous is None:
            delta = None
        else:
            delta = EnvironmentDelta.between(
                previous[0], previous[1], state.enabled_agents, state.available_edges
            )
        self._previous = (state.enabled_agents, state.available_edges)
        return state, delta

    def _advance(self, round_index: int, rng: random.Random):
        # One uniform draw per agent, then one per edge, in a fixed order —
        # exactly the stream the filtering loops below consume.  When every
        # agent passes (agent_up_probability 1), the draws are still made
        # (stream parity) but the comparisons and the list build are not:
        # draw() is in [0, 1), so ``draw() < 1`` never filters anything.
        draw = rng.random
        agent_up = self.agent_up_probability
        if agent_up >= 1.0:
            for _ in self.topology.agent_ids:
                draw()
            enabled = self._all_agents
        else:
            up_agents = [
                agent for agent in self.topology.agent_ids if draw() < agent_up
            ]
            enabled = (
                self._all_agents
                if len(up_agents) == self.topology.num_agents
                else frozenset(up_agents)
            )
        edge_up = self.edge_up_probability
        edges = frozenset(edge for edge in self._edge_sequence if draw() < edge_up)
        return EnvironmentState(enabled, edges, round_index), self._previous

    def fairness_predicates(self):
        if self.edge_up_probability > 0 and self.agent_up_probability > 0:
            return tuple(
                f"edge {edge} available (w.p. {self.edge_up_probability} per round)"
                for edge in sorted(self.topology.edges)
            )
        return ()

    def describe(self) -> str:
        return (
            f"random churn (edge up {self.edge_up_probability}, "
            f"agent up {self.agent_up_probability})"
        )


@register_environment("markov-churn")
class MarkovChurnEnvironment(Environment):
    """Edges and agents fail and recover with per-round transition rates.

    Unlike :class:`RandomChurnEnvironment`, availability is correlated in
    time: an edge that is down stays down for a geometrically distributed
    number of rounds (mean ``1 / recovery_probability``).  This models
    longer outages — a link stays broken until repaired, an agent stays
    dark until it finds power — while still satisfying ``Q_E`` with
    probability one as long as the recovery probability is positive.

    The Markov chain is naturally incremental: the per-round delta is
    exactly the set of edges and agents whose state flipped, collected
    during the transition sweep at no extra draw.
    """

    reports_deltas = True

    def __init__(
        self,
        topology: Topology,
        edge_failure_probability: float = 0.1,
        edge_recovery_probability: float = 0.3,
        agent_failure_probability: float = 0.0,
        agent_recovery_probability: float = 1.0,
    ):
        super().__init__(topology)
        for name, value in (
            ("edge_failure_probability", edge_failure_probability),
            ("edge_recovery_probability", edge_recovery_probability),
            ("agent_failure_probability", agent_failure_probability),
            ("agent_recovery_probability", agent_recovery_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise EnvironmentError_(f"{name} must be in [0, 1], got {value}")
        self.edge_failure_probability = edge_failure_probability
        self.edge_recovery_probability = edge_recovery_probability
        self.agent_failure_probability = agent_failure_probability
        self.agent_recovery_probability = agent_recovery_probability
        self._edge_up: dict = {}
        self._agent_up: dict = {}
        self._previous: tuple[frozenset, frozenset] | None = None
        self.reset()

    def reset(self) -> None:
        self._edge_up = {edge: True for edge in self.topology.edges}
        self._agent_up = {agent: True for agent in self.topology.agent_ids}
        self._previous = None

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        state, _ = self._advance(round_index, rng)
        self._previous = None
        return state

    def advance_with_delta(self, round_index, rng):
        state, flips = self._advance(round_index, rng)
        if self._previous is None:
            delta = None
        elif any(flips):
            edges_down, edges_up, agents_disabled, agents_enabled = flips
            delta = EnvironmentDelta(
                edges_down, edges_up, agents_disabled, agents_enabled
            )
        else:
            delta = EMPTY_DELTA
        self._previous = (state.enabled_agents, state.available_edges)
        return state, delta

    def _advance(self, round_index: int, rng: random.Random):
        edges_down: list = []
        edges_up: list = []
        agents_disabled: list = []
        agents_enabled: list = []
        for edge, up in self._edge_up.items():
            if up:
                if rng.random() < self.edge_failure_probability:
                    self._edge_up[edge] = False
                    edges_down.append(edge)
            else:
                if rng.random() < self.edge_recovery_probability:
                    self._edge_up[edge] = True
                    edges_up.append(edge)
        for agent, up in self._agent_up.items():
            if up:
                if rng.random() < self.agent_failure_probability:
                    self._agent_up[agent] = False
                    agents_disabled.append(agent)
            else:
                if rng.random() < self.agent_recovery_probability:
                    self._agent_up[agent] = True
                    agents_enabled.append(agent)
        previous = self._previous
        if previous is not None and not (
            edges_down or edges_up or agents_disabled or agents_enabled
        ):
            # Nothing flipped: reuse the previous round's sets (identical
            # content, identical construction) instead of re-filtering.
            enabled, edges = previous
        else:
            enabled = frozenset(a for a, up in self._agent_up.items() if up)
            edges = frozenset(e for e, up in self._edge_up.items() if up)
        state = EnvironmentState(
            enabled_agents=enabled,
            available_edges=edges,
            round_index=round_index,
        )
        return state, (edges_down, edges_up, agents_disabled, agents_enabled)

    def state_dict(self) -> dict:
        # The chain's current up/down assignment decides which transition
        # probability each future draw is compared against, so it is the
        # one piece of evolution state a checkpoint must carry.  Stored
        # sparsely (down sets only; everything starts up).
        return {
            "edges_down": sorted(
                list(edge) for edge, up in self._edge_up.items() if not up
            ),
            "agents_down": sorted(
                agent for agent, up in self._agent_up.items() if not up
            ),
        }

    def load_state(self, state) -> None:
        # reset() rebuilds both tables from the topology in construction
        # order — the same iteration order the per-round transition sweep
        # walks — then the down sets are applied on top (flipping values
        # never changes dict order, so the draw sequence is identical to
        # the uninterrupted run's).
        super().load_state(state)
        for a, b in state.get("edges_down", ()):
            edge = (a, b)
            if edge not in self._edge_up:
                raise EnvironmentError_(
                    f"checkpointed edge {edge} is not in this topology"
                )
            self._edge_up[edge] = False
        for agent in state.get("agents_down", ()):
            if agent not in self._agent_up:
                raise EnvironmentError_(
                    f"checkpointed agent {agent} is not in this topology"
                )
            self._agent_up[agent] = False

    def describe(self) -> str:
        return (
            f"markov churn (edge fail {self.edge_failure_probability}/"
            f"recover {self.edge_recovery_probability}, "
            f"agent fail {self.agent_failure_probability}/"
            f"recover {self.agent_recovery_probability})"
        )

    def fairness_predicates(self):
        if self.edge_recovery_probability > 0 and self.agent_recovery_probability > 0:
            return tuple(
                f"edge {edge} eventually recovers" for edge in sorted(self.topology.edges)
            )
        return ()


@register_environment("duty-cycle")
class PeriodicDutyCycleEnvironment(Environment):
    """Agents follow a periodic duty cycle (sleep/wake), edges always up.

    Models sensor nodes that power down to save energy: agent ``a`` is
    awake during a contiguous window of ``ceil(duty_cycle * period)``
    rounds within each period, with a per-agent phase offset.  Two agents
    can communicate only in rounds where both are awake; staggered phases
    therefore produce changing, often disconnected communication groups,
    while over a full period every edge whose endpoints' windows overlap is
    available at least once.

    With ``duty_cycle >= 0.5 + 1/period`` every pair of adjacent agents is
    guaranteed overlapping wake windows regardless of phases, which keeps
    the assumption ``Q_E`` satisfied deterministically.

    The schedule repeats with the period, so the enabled set and the
    round-to-round toggle delta are cached per phase residue: after the
    first period every round is served from the cache in O(|toggles|).
    """

    reports_deltas = True

    def __init__(
        self,
        topology: Topology,
        period: int = 10,
        duty_cycle: float = 0.6,
        phases: list[int] | None = None,
        seed: int | None = None,
    ):
        super().__init__(topology)
        if period <= 0:
            raise EnvironmentError_("period must be positive")
        if not 0.0 < duty_cycle <= 1.0:
            raise EnvironmentError_("duty_cycle must be in (0, 1]")
        self.period = period
        self.duty_cycle = duty_cycle
        # The documented window is ceil(duty_cycle * period).  round()
        # would banker's-round 2.5 to 2 (duty 0.25, period 10 -> 2 wake
        # rounds instead of 3), silently shrinking the windows the Q_E
        # guarantee is computed from.  The small epsilon keeps float
        # products that should be exact integers (e.g. 0.07 * 100 ->
        # 7.000000000000001) from being ceiled one round too high.
        self.wake_rounds = min(
            period, max(1, math.ceil(duty_cycle * period - 1e-9))
        )
        if phases is None:
            rng = random.Random(seed)
            phases = [rng.randrange(period) for _ in topology.agent_ids]
        if len(phases) != topology.num_agents:
            raise EnvironmentError_("one phase per agent is required")
        self.phases = list(phases)
        # Wake state depends only on round_index % period, so both the
        # enabled sets and the per-round toggle deltas are cacheable by
        # residue.  The cached frozensets were built by the construction
        # below on their first use, so sharing them across periods keeps
        # iteration order identical to building them fresh.
        self._enabled_by_residue: dict[int, frozenset[int]] = {}
        self._delta_by_residue: dict[int, EnvironmentDelta] = {}
        self._last_round: int | None = None

    def reset(self) -> None:
        self._last_round = None

    def _is_awake(self, agent: int, round_index: int) -> bool:
        position = (round_index - self.phases[agent]) % self.period
        return position < self.wake_rounds

    def _enabled_at(self, round_index: int) -> frozenset[int]:
        residue = round_index % self.period
        enabled = self._enabled_by_residue.get(residue)
        if enabled is None:
            enabled = frozenset(
                agent
                for agent in self.topology.agent_ids
                if self._is_awake(agent, round_index)
            )
            self._enabled_by_residue[residue] = enabled
        return enabled

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        return EnvironmentState(
            enabled_agents=self._enabled_at(round_index),
            available_edges=self.topology.edges,
            round_index=round_index,
        )

    def advance_with_delta(self, round_index, rng):
        state = self.advance(round_index, rng)
        if self._last_round != round_index - 1:
            delta = None
        else:
            residue = round_index % self.period
            delta = self._delta_by_residue.get(residue)
            if delta is None:
                delta = EnvironmentDelta.between(
                    self._enabled_at(round_index - 1),
                    self.topology.edges,
                    state.enabled_agents,
                    self.topology.edges,
                )
                self._delta_by_residue[residue] = delta
        self._last_round = round_index
        return state, delta

    def state_dict(self) -> dict:
        # The schedule is a pure function of the round index *given the
        # phases* — but the phases themselves may have been drawn from an
        # unseeded generator at construction, so the checkpoint carries
        # them rather than trusting a reconstruction to re-roll the same.
        return {"phases": list(self.phases)}

    def load_state(self, state) -> None:
        super().load_state(state)
        phases = state.get("phases")
        if phases is not None and list(phases) != self.phases:
            if len(phases) != self.topology.num_agents:
                raise EnvironmentError_(
                    "checkpoint carries one phase per agent; got "
                    f"{len(phases)} for {self.topology.num_agents} agents"
                )
            self.phases = [int(phase) for phase in phases]
            self._enabled_by_residue = {}
            self._delta_by_residue = {}

    def describe(self) -> str:
        return f"periodic duty cycle (period {self.period}, duty {self.duty_cycle})"

    def fairness_predicates(self):
        return tuple(
            f"agents {a} and {b} awake together once per period"
            for a, b in sorted(self.topology.edges)
            if self._windows_overlap(a, b)
        )

    def _windows_overlap(self, a: int, b: int) -> bool:
        rounds_a = {
            (self.phases[a] + offset) % self.period for offset in range(self.wake_rounds)
        }
        rounds_b = {
            (self.phases[b] + offset) % self.period for offset in range(self.wake_rounds)
        }
        return bool(rounds_a & rounds_b)
