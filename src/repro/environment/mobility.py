"""Mobility and battery dynamics.

The paper motivates dynamic systems with mobile agents: "agents go in and
out of communication range as they travel" and "cease functioning after
they run out of battery power and resume operation when they gain access
to other sources of power".  This module models exactly that scenario:

* agents move in a square arena following a random-waypoint model;
* two agents can communicate in a round when their distance is at most
  the radio ``range_radius``;
* optionally, each agent has a battery that drains while it is awake and
  recharges while it sleeps; an agent with an empty battery is disabled
  until the battery recovers.

The induced communication graph changes every round, is often
disconnected and has no fixed structure — the most faithful instantiation
of the paper's "extremely dynamic" environments.  As long as the arena is
small enough relative to the radio range (or agents keep moving), every
pair of agents meets infinitely often with probability one, which is the
``Q_E``-on-a-complete-graph assumption needed even for the sum problem.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass

from ..core.errors import EnvironmentError_
from ..registry import register_environment
from .base import Environment, EnvironmentDelta, EnvironmentState, Topology
from .graphs import complete_graph

__all__ = ["MobileAgent", "RandomWaypointEnvironment"]


@dataclass
class MobileAgent:
    """Internal per-agent mobility and battery state."""

    x: float
    y: float
    target_x: float
    target_y: float
    battery: float


@register_environment("mobility")
class RandomWaypointEnvironment(Environment):
    """Random-waypoint mobility with a disk communication model.

    Parameters
    ----------
    num_agents:
        Number of mobile agents.
    arena_size:
        Side length of the square arena agents move in.
    range_radius:
        Two agents can communicate when their Euclidean distance is at
        most this radius.
    speed:
        Distance an agent covers per round while moving toward its current
        waypoint.
    battery_capacity:
        Rounds of activity a full battery sustains; ``None`` disables the
        battery model entirely (agents are always enabled).
    drain_per_round / recharge_per_round:
        Battery units consumed while enabled and regained while disabled.
    seed:
        Seed for the initial placement and waypoint selection, so that a
        simulation can be reproduced exactly.

    The contact graph is recomputed from positions every round (that *is*
    the model), but the round-to-round delta — who moved in or out of
    range, whose battery crossed empty — is reported alongside, so the
    connectivity layer downstream still updates incrementally.
    """

    reports_deltas = True

    def __init__(
        self,
        num_agents: int,
        arena_size: float = 100.0,
        range_radius: float = 30.0,
        speed: float = 5.0,
        battery_capacity: float | None = None,
        drain_per_round: float = 1.0,
        recharge_per_round: float = 2.0,
        seed: int | None = None,
    ):
        if num_agents <= 0:
            raise EnvironmentError_("num_agents must be positive")
        if arena_size <= 0 or range_radius <= 0 or speed < 0:
            raise EnvironmentError_(
                "arena_size and range_radius must be positive, speed non-negative"
            )
        # The underlying topology for Q_E purposes is the complete graph:
        # mobility can bring any pair of agents within range.
        super().__init__(complete_graph(num_agents))
        self.arena_size = arena_size
        self.range_radius = range_radius
        self.speed = speed
        self.battery_capacity = battery_capacity
        self.drain_per_round = drain_per_round
        self.recharge_per_round = recharge_per_round
        if seed is None:
            # Draw the placement seed explicitly: reset() re-rolls the
            # initial world from this value, so an "unseeded" environment
            # must still pin one — otherwise reset() produces a different
            # arena than the construction did and a reset run diverges
            # from a fresh one.
            seed = random.randrange(2**63)
        self.seed = seed
        self._agents: list[MobileAgent] = []
        self._previous: tuple[frozenset, frozenset] | None = None
        self.reset()

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        rng = random.Random(self.seed)
        self._agents = []
        self._previous = None
        for _ in range(self.num_agents):
            x = rng.uniform(0, self.arena_size)
            y = rng.uniform(0, self.arena_size)
            self._agents.append(
                MobileAgent(
                    x=x,
                    y=y,
                    target_x=rng.uniform(0, self.arena_size),
                    target_y=rng.uniform(0, self.arena_size),
                    battery=(
                        self.battery_capacity
                        if self.battery_capacity is not None
                        else math.inf
                    ),
                )
            )

    # -- dynamics -------------------------------------------------------------

    def _move(self, agent: MobileAgent, rng: random.Random) -> None:
        dx = agent.target_x - agent.x
        dy = agent.target_y - agent.y
        dist = math.hypot(dx, dy)
        if dist <= self.speed:
            agent.x, agent.y = agent.target_x, agent.target_y
            agent.target_x = rng.uniform(0, self.arena_size)
            agent.target_y = rng.uniform(0, self.arena_size)
        elif dist > 0:
            agent.x += dx / dist * self.speed
            agent.y += dy / dist * self.speed

    def _update_battery(self, agent: MobileAgent, was_enabled: bool) -> None:
        if self.battery_capacity is None:
            return
        if was_enabled:
            agent.battery = max(0.0, agent.battery - self.drain_per_round)
        else:
            agent.battery = min(
                self.battery_capacity, agent.battery + self.recharge_per_round
            )

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        state = self._advance(round_index, rng)
        self._previous = None
        return state

    def advance_with_delta(self, round_index, rng):
        previous = self._previous
        state = self._advance(round_index, rng)
        if previous is None:
            delta = None
        else:
            delta = EnvironmentDelta.between(
                previous[0], previous[1], state.enabled_agents, state.available_edges
            )
        self._previous = (state.enabled_agents, state.available_edges)
        return state, delta

    def _advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        for agent in self._agents:
            self._move(agent, rng)

        enabled = set()
        for agent_id, agent in enumerate(self._agents):
            is_enabled = agent.battery > 0
            if is_enabled:
                enabled.add(agent_id)
            self._update_battery(agent, is_enabled)

        edges = set()
        for a, b in itertools.combinations(range(self.num_agents), 2):
            pa, pb = self._agents[a], self._agents[b]
            if math.hypot(pa.x - pb.x, pa.y - pb.y) <= self.range_radius:
                edges.add((a, b))

        return EnvironmentState(
            enabled_agents=frozenset(enabled),
            available_edges=frozenset(edges),
            round_index=round_index,
        )

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        # Positions, waypoints and batteries are the whole mobility state;
        # every future draw (waypoint re-rolls) and every future contact
        # graph follows from them plus the engine's RNG.  Floats survive
        # the JSON round trip exactly (shortest-repr); an infinite battery
        # (no battery model) is stored as None.
        return {
            "agents": [
                [
                    agent.x,
                    agent.y,
                    agent.target_x,
                    agent.target_y,
                    None if math.isinf(agent.battery) else agent.battery,
                ]
                for agent in self._agents
            ]
        }

    def load_state(self, state) -> None:
        super().load_state(state)
        agents = state.get("agents")
        if agents is None:
            return
        if len(agents) != self.num_agents:
            raise EnvironmentError_(
                f"checkpoint carries {len(agents)} mobile agents for "
                f"{self.num_agents}"
            )
        self._agents = [
            MobileAgent(
                x=x,
                y=y,
                target_x=target_x,
                target_y=target_y,
                battery=math.inf if battery is None else battery,
            )
            for x, y, target_x, target_y, battery in agents
        ]

    # -- reporting ------------------------------------------------------------

    def positions(self) -> list[tuple[float, float]]:
        """Current agent positions (useful for the examples' textual plots)."""
        return [(agent.x, agent.y) for agent in self._agents]

    def describe(self) -> str:
        battery = (
            "no battery model"
            if self.battery_capacity is None
            else f"battery {self.battery_capacity}"
        )
        return (
            f"random waypoint (arena {self.arena_size}, radius {self.range_radius}, "
            f"speed {self.speed}, {battery})"
        )

    def fairness_predicates(self):
        return ("every pair of agents within radio range infinitely often (w.p. 1)",)
