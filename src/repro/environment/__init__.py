"""Environment models for dynamic distributed systems.

The environment is the half of the paper's model the designer cannot
control: it decides which agents are enabled and which links are available
in each round.  This package provides the fixed communication topologies
(``Q_E`` graphs), stochastic dynamics, adversaries and a mobility model.
"""

from .adversary import (
    BlackoutAdversary,
    EdgeBudgetAdversary,
    RotatingPartitionAdversary,
    TargetedCrashAdversary,
)
from .base import (
    EMPTY_DELTA,
    Environment,
    EnvironmentDelta,
    EnvironmentState,
    Topology,
    connected_components,
)
from .connectivity import ConnectivityTracker
from .dynamics import (
    MarkovChurnEnvironment,
    PeriodicDutyCycleEnvironment,
    RandomChurnEnvironment,
    StaticEnvironment,
)
from .graphs import (
    complete_graph,
    grid_graph,
    line_graph,
    random_connected_graph,
    random_graph,
    ring_graph,
    star_graph,
    tree_graph,
)
from .mobility import MobileAgent, RandomWaypointEnvironment

__all__ = [
    "BlackoutAdversary",
    "EdgeBudgetAdversary",
    "RotatingPartitionAdversary",
    "TargetedCrashAdversary",
    "ConnectivityTracker",
    "EMPTY_DELTA",
    "Environment",
    "EnvironmentDelta",
    "EnvironmentState",
    "Topology",
    "connected_components",
    "MarkovChurnEnvironment",
    "PeriodicDutyCycleEnvironment",
    "RandomChurnEnvironment",
    "StaticEnvironment",
    "complete_graph",
    "grid_graph",
    "line_graph",
    "random_connected_graph",
    "random_graph",
    "ring_graph",
    "star_graph",
    "tree_graph",
    "MobileAgent",
    "RandomWaypointEnvironment",
]
