"""Adversarial environments.

The paper motivates the model with adversarial situations: "an opposing
team may disable agents and communication channels".  The environments in
this module are *deterministic adversaries* that actively work against the
computation — partitioning the network, silencing large fractions of the
agents, targeting specific agents — while still (by construction) meeting
a fairness assumption ``Q``, because an adversary that disables everything
forever makes progress impossible for *any* algorithm.

Each adversary documents which fairness it preserves.  The benchmarks use
them to demonstrate the paper's headline property: self-similar algorithms
remain correct under adversity and simply slow down, whereas baselines
that rely on global coordination (snapshots, spanning trees) break or
stall.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.errors import EnvironmentError_
from ..registry import register_environment
from .base import (
    EMPTY_DELTA,
    Environment,
    EnvironmentDelta,
    EnvironmentState,
    Topology,
)

__all__ = [
    "RotatingPartitionAdversary",
    "TargetedCrashAdversary",
    "BlackoutAdversary",
    "EdgeBudgetAdversary",
]


@register_environment("rotating-partition")
class RotatingPartitionAdversary(Environment):
    """Splits the agents into ``k`` blocks and only allows intra-block edges.

    At every instant the system is partitioned into ``k`` mutually isolated
    groups — no algorithm can ever coordinate globally in a single round.
    Every ``rotate_every`` rounds the adversary reshuffles the block
    assignment (deterministically from the epoch number and the instance
    ``seed``), so any given pair of agents shares a block in a constant
    fraction of the epochs and therefore meets infinitely often — the
    assumption ``Q_E`` still holds.  This is the canonical scenario for
    self-similarity: each partition block must behave like a complete
    system on its own.

    Within an epoch the state is constant (the cached edge set is shared
    and the reported delta empty); crossing an epoch boundary reports the
    exact edge diff between the outgoing and incoming partitions.
    """

    reports_deltas = True

    def __init__(
        self,
        topology: Topology,
        num_blocks: int = 2,
        rotate_every: int = 5,
        seed: int = 0,
    ):
        super().__init__(topology)
        if num_blocks < 1:
            raise EnvironmentError_("num_blocks must be at least 1")
        if rotate_every < 1:
            raise EnvironmentError_("rotate_every must be at least 1")
        self.num_blocks = num_blocks
        self.rotate_every = rotate_every
        self.seed = seed
        self._epoch_cache: dict[int, dict[int, int]] = {}
        self._all_agents = frozenset(topology.agent_ids)
        self._epoch_edges: tuple[int, frozenset] | None = None
        self._last_round: int | None = None

    def reset(self) -> None:
        self._last_round = None

    def _blocks_for_epoch(self, epoch: int) -> dict[int, int]:
        """Block assignment for one epoch: a seeded shuffle cut into
        near-equal contiguous chunks (cached — epochs repeat per round)."""
        if epoch not in self._epoch_cache:
            shuffler = random.Random(self.seed * 1_000_003 + epoch)
            order = list(self.topology.agent_ids)
            shuffler.shuffle(order)
            assignment = {
                agent: position * self.num_blocks // len(order)
                for position, agent in enumerate(order)
            }
            # Keep the cache bounded: only the current epoch is ever needed.
            self._epoch_cache = {epoch: assignment}
        return self._epoch_cache[epoch]

    def _block_of(self, agent: int, round_index: int) -> int:
        epoch = round_index // self.rotate_every
        return self._blocks_for_epoch(epoch)[agent]

    def _edges_for_round(self, round_index: int) -> frozenset:
        epoch = round_index // self.rotate_every
        cached = self._epoch_edges
        if cached is not None and cached[0] == epoch:
            return cached[1]
        edges = frozenset(
            (a, b)
            for a, b in self.topology.edges
            if self._block_of(a, round_index) == self._block_of(b, round_index)
        )
        self._epoch_edges = (epoch, edges)
        return edges

    def _build_state(self, round_index: int) -> EnvironmentState:
        return EnvironmentState(
            enabled_agents=self._all_agents,
            available_edges=self._edges_for_round(round_index),
            round_index=round_index,
        )

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        state = self._build_state(round_index)
        # Plain advances invalidate the delta base: an interleaved caller
        # may have crossed an epoch boundary the delta tracking never saw.
        self._last_round = None
        return state

    def advance_with_delta(self, round_index, rng):
        previous_edges = (
            self._epoch_edges[1] if self._epoch_edges is not None else None
        )
        state = self._build_state(round_index)
        if self._last_round != round_index - 1 or previous_edges is None:
            delta = None
        elif previous_edges is state.available_edges:
            delta = EMPTY_DELTA
        else:
            delta = EnvironmentDelta.between(
                self._all_agents,
                previous_edges,
                self._all_agents,
                state.available_edges,
            )
        self._last_round = round_index
        return state, delta

    def describe(self) -> str:
        return (
            f"rotating partition ({self.num_blocks} blocks, "
            f"rotate every {self.rotate_every} rounds)"
        )

    def fairness_predicates(self):
        return tuple(
            f"edge {edge} joins same block in a constant fraction of epochs"
            for edge in sorted(self.topology.edges)
        )


@register_environment("targeted-crash")
class TargetedCrashAdversary(Environment):
    """Disables a chosen set of agents for long stretches, then releases them.

    The adversary crashes the agents in ``targets`` for ``down_rounds``
    rounds out of every ``period`` rounds.  Because the targets recover for
    the remainder of each period, the fairness assumption still holds; but
    any algorithm that relies on a distinguished coordinator among the
    targets is starved for most of the computation.

    Only two enabled sets ever occur (targets down / everyone up); both
    are cached, and the reported delta is the target set toggling at the
    phase boundaries.
    """

    reports_deltas = True

    def __init__(
        self,
        topology: Topology,
        targets: Sequence[int],
        period: int = 10,
        down_rounds: int = 8,
    ):
        super().__init__(topology)
        bad = [t for t in targets if not 0 <= t < topology.num_agents]
        if bad:
            raise EnvironmentError_(f"targets {bad} outside 0..{topology.num_agents - 1}")
        if not 0 <= down_rounds <= period:
            raise EnvironmentError_("down_rounds must be between 0 and period")
        self.targets = frozenset(targets)
        self.period = period
        self.down_rounds = down_rounds
        self._all_agents = frozenset(topology.agent_ids)
        self._survivors = frozenset(
            a for a in topology.agent_ids if a not in self.targets
        )
        self._last_round: int | None = None

    def reset(self) -> None:
        self._last_round = None

    def _in_down_phase(self, round_index: int) -> bool:
        return (round_index % self.period) < self.down_rounds

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        enabled = (
            self._survivors if self._in_down_phase(round_index) else self._all_agents
        )
        return EnvironmentState(
            enabled_agents=enabled,
            available_edges=self.topology.edges,
            round_index=round_index,
        )

    def advance_with_delta(self, round_index, rng):
        state = self.advance(round_index, rng)
        if self._last_round != round_index - 1:
            delta = None
        else:
            down_now = self._in_down_phase(round_index)
            down_before = self._in_down_phase(round_index - 1)
            if down_now == down_before:
                delta = EMPTY_DELTA
            elif down_now:
                delta = EnvironmentDelta(agents_disabled=self.targets)
            else:
                delta = EnvironmentDelta(agents_enabled=self.targets)
        self._last_round = round_index
        return state, delta

    def describe(self) -> str:
        return (
            f"targeted crash of {sorted(self.targets)} "
            f"({self.down_rounds}/{self.period} rounds down)"
        )

    def fairness_predicates(self):
        return tuple(
            f"agent {agent} enabled once per period" for agent in sorted(self.targets)
        )


@register_environment("blackout")
class BlackoutAdversary(Environment):
    """Periodically disables *everything* for a stretch of rounds.

    During a blackout no agent may take a step — the computation freezes,
    exactly as the paper's model allows ("no progress is possible while the
    environment prevents all agents from changing state").  Between
    blackouts the system is fully available.  The escape postulate is
    respected because blackouts always end.

    Only two states ever occur (dark / fully up); the reported delta is
    everything toggling at the blackout boundaries.
    """

    reports_deltas = True

    def __init__(self, topology: Topology, period: int = 10, blackout_rounds: int = 5):
        super().__init__(topology)
        if not 0 <= blackout_rounds < period:
            raise EnvironmentError_("blackout_rounds must be in [0, period)")
        self.period = period
        self.blackout_rounds = blackout_rounds
        self._all_agents = frozenset(topology.agent_ids)
        self._nobody: frozenset[int] = frozenset()
        self._no_edges: frozenset = frozenset()
        self._last_round: int | None = None

    def reset(self) -> None:
        self._last_round = None

    def _in_blackout(self, round_index: int) -> bool:
        return (round_index % self.period) < self.blackout_rounds

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        if self._in_blackout(round_index):
            return EnvironmentState(
                enabled_agents=self._nobody,
                available_edges=self._no_edges,
                round_index=round_index,
            )
        return EnvironmentState(
            enabled_agents=self._all_agents,
            available_edges=self.topology.edges,
            round_index=round_index,
        )

    def advance_with_delta(self, round_index, rng):
        state = self.advance(round_index, rng)
        if self._last_round != round_index - 1:
            delta = None
        else:
            dark_now = self._in_blackout(round_index)
            dark_before = self._in_blackout(round_index - 1)
            if dark_now == dark_before:
                delta = EMPTY_DELTA
            elif dark_now:
                delta = EnvironmentDelta(
                    edges_down=self.topology.edges,
                    agents_disabled=self._all_agents,
                )
            else:
                delta = EnvironmentDelta(
                    edges_up=self.topology.edges,
                    agents_enabled=self._all_agents,
                )
        self._last_round = round_index
        return state, delta

    def describe(self) -> str:
        return f"blackout ({self.blackout_rounds}/{self.period} rounds dark)"

    def fairness_predicates(self):
        return ("all edges available once per period",)


@register_environment("edge-budget")
class EdgeBudgetAdversary(Environment):
    """Allows only ``budget`` edges per round, chosen round-robin.

    Models extreme bandwidth scarcity: the adversary meters communication
    down to a handful of links per round, cycling through the topology's
    edges so that each one is available once every
    ``ceil(|E| / budget)`` rounds (hence ``Q_E`` holds).  Convergence time
    degrades roughly inversely with the budget, which experiment E1 uses
    to quantify the "speed up or slow down with available resources"
    claim.

    The per-round delta is the diff between consecutive round-robin
    windows — at most ``2 · budget`` edges regardless of the topology.
    """

    reports_deltas = True

    def __init__(self, topology: Topology, budget: int = 1):
        super().__init__(topology)
        if budget < 1:
            raise EnvironmentError_("budget must be at least 1")
        self.budget = budget
        self._ordered_edges = sorted(topology.edges)
        self._all_agents = frozenset(topology.agent_ids)
        self._previous: tuple[int, frozenset] | None = None

    def reset(self) -> None:
        self._previous = None

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        state = self._build_state(round_index)
        self._previous = None
        return state

    def advance_with_delta(self, round_index, rng):
        previous = self._previous
        state = self._build_state(round_index)
        if previous is None or previous[0] != round_index - 1:
            delta = None
        else:
            delta = EnvironmentDelta.between(
                self._all_agents,
                previous[1],
                self._all_agents,
                state.available_edges,
            )
        self._previous = (round_index, state.available_edges)
        return state, delta

    def _build_state(self, round_index: int) -> EnvironmentState:
        if not self._ordered_edges:
            edges: frozenset = frozenset()
        else:
            start = (round_index * self.budget) % len(self._ordered_edges)
            chosen = [
                self._ordered_edges[(start + offset) % len(self._ordered_edges)]
                for offset in range(min(self.budget, len(self._ordered_edges)))
            ]
            edges = frozenset(chosen)
        return EnvironmentState(
            enabled_agents=self._all_agents,
            available_edges=edges,
            round_index=round_index,
        )

    def describe(self) -> str:
        return f"edge budget ({self.budget} edges per round, round-robin)"

    def fairness_predicates(self):
        return tuple(
            f"edge {edge} available once per cycle" for edge in self._ordered_edges
        )
