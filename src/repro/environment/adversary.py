"""Adversarial environments.

The paper motivates the model with adversarial situations: "an opposing
team may disable agents and communication channels".  The environments in
this module are *deterministic adversaries* that actively work against the
computation — partitioning the network, silencing large fractions of the
agents, targeting specific agents — while still (by construction) meeting
a fairness assumption ``Q``, because an adversary that disables everything
forever makes progress impossible for *any* algorithm.

Each adversary documents which fairness it preserves.  The benchmarks use
them to demonstrate the paper's headline property: self-similar algorithms
remain correct under adversity and simply slow down, whereas baselines
that rely on global coordination (snapshots, spanning trees) break or
stall.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.errors import EnvironmentError_
from ..registry import register_environment
from .base import Environment, EnvironmentState, Topology

__all__ = [
    "RotatingPartitionAdversary",
    "TargetedCrashAdversary",
    "BlackoutAdversary",
    "EdgeBudgetAdversary",
]


@register_environment("rotating-partition")
class RotatingPartitionAdversary(Environment):
    """Splits the agents into ``k`` blocks and only allows intra-block edges.

    At every instant the system is partitioned into ``k`` mutually isolated
    groups — no algorithm can ever coordinate globally in a single round.
    Every ``rotate_every`` rounds the adversary reshuffles the block
    assignment (deterministically from the epoch number and the instance
    ``seed``), so any given pair of agents shares a block in a constant
    fraction of the epochs and therefore meets infinitely often — the
    assumption ``Q_E`` still holds.  This is the canonical scenario for
    self-similarity: each partition block must behave like a complete
    system on its own.
    """

    def __init__(
        self,
        topology: Topology,
        num_blocks: int = 2,
        rotate_every: int = 5,
        seed: int = 0,
    ):
        super().__init__(topology)
        if num_blocks < 1:
            raise EnvironmentError_("num_blocks must be at least 1")
        if rotate_every < 1:
            raise EnvironmentError_("rotate_every must be at least 1")
        self.num_blocks = num_blocks
        self.rotate_every = rotate_every
        self.seed = seed
        self._epoch_cache: dict[int, dict[int, int]] = {}

    def _blocks_for_epoch(self, epoch: int) -> dict[int, int]:
        """Block assignment for one epoch: a seeded shuffle cut into
        near-equal contiguous chunks (cached — epochs repeat per round)."""
        if epoch not in self._epoch_cache:
            shuffler = random.Random(self.seed * 1_000_003 + epoch)
            order = list(self.topology.agent_ids)
            shuffler.shuffle(order)
            assignment = {
                agent: position * self.num_blocks // len(order)
                for position, agent in enumerate(order)
            }
            # Keep the cache bounded: only the current epoch is ever needed.
            self._epoch_cache = {epoch: assignment}
        return self._epoch_cache[epoch]

    def _block_of(self, agent: int, round_index: int) -> int:
        epoch = round_index // self.rotate_every
        return self._blocks_for_epoch(epoch)[agent]

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        edges = frozenset(
            (a, b)
            for a, b in self.topology.edges
            if self._block_of(a, round_index) == self._block_of(b, round_index)
        )
        return EnvironmentState(
            enabled_agents=frozenset(self.topology.agent_ids),
            available_edges=edges,
            round_index=round_index,
        )

    def describe(self) -> str:
        return (
            f"rotating partition ({self.num_blocks} blocks, "
            f"rotate every {self.rotate_every} rounds)"
        )

    def fairness_predicates(self):
        return tuple(
            f"edge {edge} joins same block in a constant fraction of epochs"
            for edge in sorted(self.topology.edges)
        )


@register_environment("targeted-crash")
class TargetedCrashAdversary(Environment):
    """Disables a chosen set of agents for long stretches, then releases them.

    The adversary crashes the agents in ``targets`` for ``down_rounds``
    rounds out of every ``period`` rounds.  Because the targets recover for
    the remainder of each period, the fairness assumption still holds; but
    any algorithm that relies on a distinguished coordinator among the
    targets is starved for most of the computation.
    """

    def __init__(
        self,
        topology: Topology,
        targets: Sequence[int],
        period: int = 10,
        down_rounds: int = 8,
    ):
        super().__init__(topology)
        bad = [t for t in targets if not 0 <= t < topology.num_agents]
        if bad:
            raise EnvironmentError_(f"targets {bad} outside 0..{topology.num_agents - 1}")
        if not 0 <= down_rounds <= period:
            raise EnvironmentError_("down_rounds must be between 0 and period")
        self.targets = frozenset(targets)
        self.period = period
        self.down_rounds = down_rounds

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        in_down_phase = (round_index % self.period) < self.down_rounds
        if in_down_phase:
            enabled = frozenset(
                a for a in self.topology.agent_ids if a not in self.targets
            )
        else:
            enabled = frozenset(self.topology.agent_ids)
        return EnvironmentState(
            enabled_agents=enabled,
            available_edges=self.topology.edges,
            round_index=round_index,
        )

    def describe(self) -> str:
        return (
            f"targeted crash of {sorted(self.targets)} "
            f"({self.down_rounds}/{self.period} rounds down)"
        )

    def fairness_predicates(self):
        return tuple(
            f"agent {agent} enabled once per period" for agent in sorted(self.targets)
        )


@register_environment("blackout")
class BlackoutAdversary(Environment):
    """Periodically disables *everything* for a stretch of rounds.

    During a blackout no agent may take a step — the computation freezes,
    exactly as the paper's model allows ("no progress is possible while the
    environment prevents all agents from changing state").  Between
    blackouts the system is fully available.  The escape postulate is
    respected because blackouts always end.
    """

    def __init__(self, topology: Topology, period: int = 10, blackout_rounds: int = 5):
        super().__init__(topology)
        if not 0 <= blackout_rounds < period:
            raise EnvironmentError_("blackout_rounds must be in [0, period)")
        self.period = period
        self.blackout_rounds = blackout_rounds

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        in_blackout = (round_index % self.period) < self.blackout_rounds
        if in_blackout:
            return EnvironmentState(
                enabled_agents=frozenset(),
                available_edges=frozenset(),
                round_index=round_index,
            )
        return EnvironmentState(
            enabled_agents=frozenset(self.topology.agent_ids),
            available_edges=self.topology.edges,
            round_index=round_index,
        )

    def describe(self) -> str:
        return f"blackout ({self.blackout_rounds}/{self.period} rounds dark)"

    def fairness_predicates(self):
        return ("all edges available once per period",)


@register_environment("edge-budget")
class EdgeBudgetAdversary(Environment):
    """Allows only ``budget`` edges per round, chosen round-robin.

    Models extreme bandwidth scarcity: the adversary meters communication
    down to a handful of links per round, cycling through the topology's
    edges so that each one is available once every
    ``ceil(|E| / budget)`` rounds (hence ``Q_E`` holds).  Convergence time
    degrades roughly inversely with the budget, which experiment E1 uses
    to quantify the "speed up or slow down with available resources"
    claim.
    """

    def __init__(self, topology: Topology, budget: int = 1):
        super().__init__(topology)
        if budget < 1:
            raise EnvironmentError_("budget must be at least 1")
        self.budget = budget
        self._ordered_edges = sorted(topology.edges)

    def advance(self, round_index: int, rng: random.Random) -> EnvironmentState:
        if not self._ordered_edges:
            edges: frozenset = frozenset()
        else:
            start = (round_index * self.budget) % len(self._ordered_edges)
            chosen = [
                self._ordered_edges[(start + offset) % len(self._ordered_edges)]
                for offset in range(min(self.budget, len(self._ordered_edges)))
            ]
            edges = frozenset(chosen)
        return EnvironmentState(
            enabled_agents=frozenset(self.topology.agent_ids),
            available_edges=edges,
            round_index=round_index,
        )

    def describe(self) -> str:
        return f"edge budget ({self.budget} edges per round, round-robin)"

    def fairness_predicates(self):
        return tuple(
            f"edge {edge} available once per cycle" for edge in self._ordered_edges
        )
