"""Standard communication topologies.

The paper's environment assumptions are stated as predicate sets ``Q_E``
over a graph ``E``: for the minimum and convex-hull problems any connected
graph suffices; the sum problem needs a complete graph; sorting needs (at
least) the line joining adjacent array positions.  This module provides
constructors for those graphs and a few others used in the experiments.
"""

from __future__ import annotations

import itertools
import random

from ..core.errors import EnvironmentError_
from ..registry import register_graph
from .base import Topology

__all__ = [
    "complete_graph",
    "line_graph",
    "ring_graph",
    "star_graph",
    "grid_graph",
    "random_graph",
    "random_connected_graph",
    "tree_graph",
]


@register_graph("complete")
def complete_graph(num_agents: int) -> Topology:
    """Every pair of agents shares an edge (the paper's requirement for sum)."""
    return Topology(num_agents, itertools.combinations(range(num_agents), 2))


@register_graph("line")
def line_graph(num_agents: int) -> Topology:
    """Agents in a line: ``i`` is joined to ``i + 1`` (sorting's requirement)."""
    return Topology(num_agents, ((i, i + 1) for i in range(num_agents - 1)))


@register_graph("ring")
def ring_graph(num_agents: int) -> Topology:
    """A cycle through all agents."""
    if num_agents < 3:
        return line_graph(num_agents)
    edges = [(i, i + 1) for i in range(num_agents - 1)]
    edges.append((num_agents - 1, 0))
    return Topology(num_agents, edges)


@register_graph("star")
def star_graph(num_agents: int, center: int = 0) -> Topology:
    """All agents joined to a single hub agent."""
    if not 0 <= center < num_agents:
        raise EnvironmentError_(f"center {center} outside 0..{num_agents - 1}")
    return Topology(
        num_agents, ((center, other) for other in range(num_agents) if other != center)
    )


@register_graph("grid")
def grid_graph(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` grid; agent ``(r, c)`` has id ``r * cols + c``."""
    if rows <= 0 or cols <= 0:
        raise EnvironmentError_("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            agent = r * cols + c
            if c + 1 < cols:
                edges.append((agent, agent + 1))
            if r + 1 < rows:
                edges.append((agent, agent + cols))
    return Topology(rows * cols, edges)


@register_graph("tree")
def tree_graph(num_agents: int, branching: int = 2) -> Topology:
    """A complete ``branching``-ary tree rooted at agent 0."""
    if branching < 1:
        raise EnvironmentError_("branching factor must be at least 1")
    edges = []
    for child in range(1, num_agents):
        parent = (child - 1) // branching
        edges.append((parent, child))
    return Topology(num_agents, edges)


@register_graph("random")
def random_graph(num_agents: int, edge_probability: float, seed: int | None = None) -> Topology:
    """An Erdős–Rényi ``G(n, p)`` graph (not necessarily connected)."""
    if not 0.0 <= edge_probability <= 1.0:
        raise EnvironmentError_("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    edges = [
        (a, b)
        for a, b in itertools.combinations(range(num_agents), 2)
        if rng.random() < edge_probability
    ]
    return Topology(num_agents, edges)


@register_graph("random-connected")
def random_connected_graph(
    num_agents: int, extra_edge_probability: float = 0.1, seed: int | None = None
) -> Topology:
    """A random connected graph: a random spanning tree plus extra random edges.

    The spanning tree guarantees connectivity (the weakest structure under
    which the minimum / hull algorithms make progress); the extra edges
    control density.
    """
    rng = random.Random(seed)
    agents = list(range(num_agents))
    rng.shuffle(agents)
    edges = set()
    # Random spanning tree: attach each agent to a random earlier agent.
    for index in range(1, num_agents):
        other = agents[rng.randrange(index)]
        a, b = agents[index], other
        edges.add((min(a, b), max(a, b)))
    for a, b in itertools.combinations(range(num_agents), 2):
        if (a, b) not in edges and rng.random() < extra_edge_probability:
            edges.add((a, b))
    return Topology(num_agents, edges)
