"""The declarative experiment layer: experiments as data.

The paper's methodology describes an algorithm *once* and executes it
uniformly across any environment and any group schedule.  This module
gives the library the same property at the API level: an experiment is a
frozen, validated, JSON-round-trippable :class:`ExperimentSpec` naming its
parts through the registries of :mod:`repro.registry`, instead of a
hand-wired tangle of imported classes::

    spec = (Experiment.builder()
            .algorithm("minimum")
            .environment("churn", edge_up_probability=0.3)
            .topology("complete")
            .scheduler("maximal")
            .values(5, 3, 9, 1, 7, 2, 8, 4)
            .seeds(0, 1, 2)
            .max_rounds(500)
            .build())

    result = spec.run(seed=0)          # one Simulator run
    text = spec.to_json()              # persist / ship / diff
    same = ExperimentSpec.from_json(text)

Specs are what the CLI executes (``repro run spec.json``), what
:class:`~repro.simulation.batch.BatchRunner` distributes across worker
processes, and what parameter sweeps expand (:func:`expand_grid`).  A spec
built from JSON produces the same :class:`SimulationResult` as the
equivalent hand-wired :class:`~repro.simulation.engine.Simulator` call,
seed for seed.
"""

from __future__ import annotations

import copy
import hashlib
import json
import random
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Sequence

from .core.errors import SpecificationError
from .registry import (
    ALGORITHMS,
    ENGINES,
    ENVIRONMENTS,
    GRAPHS,
    PROBES,
    SCHEDULERS,
    VALUE_GENERATORS,
    register_value_generator,
)
from .simulation.engine import Simulator
from .simulation.protocol import HISTORY_MODES, Probe
from .simulation.result import SimulationResult

# Importing these packages populates the registries; without them a spec
# could not be validated when repro.experiment is imported on its own
# (e.g. inside a BatchRunner worker process).
from . import algorithms as _algorithms  # noqa: F401  (registration side effect)
from . import environment as _environment  # noqa: F401  (registration side effect)
from .agents import scheduler as _scheduler  # noqa: F401  (registration side effect)
from .simulation import array_engine as _array_engine  # noqa: F401  (registration side effect)
from .simulation import probes as _probes  # noqa: F401  (registration side effect)

__all__ = [
    "ExperimentSpec",
    "Experiment",
    "ExperimentBuilder",
    "expand_grid",
]


# -- named value generators -----------------------------------------------------


@register_value_generator("random-integers")
def random_integers(
    count: int, low: int = 0, high: int = 99, seed: int | None = None
) -> list[int]:
    """``count`` integers drawn uniformly from ``[low, high]``."""
    rng = random.Random(seed)
    return [rng.randint(low, high) for _ in range(count)]


@register_value_generator("random-distinct-integers")
def random_distinct_integers(
    count: int, low: int = 0, high: int = 999, seed: int | None = None
) -> list[int]:
    """``count`` pairwise-distinct integers from ``[low, high]`` (sorting
    and block-sorting instances require distinct values)."""
    rng = random.Random(seed)
    return rng.sample(range(low, high + 1), count)


@register_value_generator("random-points")
def random_points(
    count: int, arena_size: float = 100.0, seed: int | None = None
) -> list[tuple[float, float]]:
    """``count`` uniform positions in an ``arena_size`` × ``arena_size`` square
    (instances for the geometric algorithms)."""
    rng = random.Random(seed)
    return [
        (rng.uniform(0, arena_size), rng.uniform(0, arena_size)) for _ in range(count)
    ]


# -- the spec -------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, serializable description of one experiment.

    Every component is named through a registry and parameterized by a
    plain dictionary, so the spec round-trips through JSON and can be
    dispatched to worker processes.  The problem instance is either an
    explicit tuple of ``initial_values`` or a named ``value_generator``
    (exactly one of the two must be set).

    The ``environment_params`` may carry a declarative ``"topology"``
    entry — either a graph name (``"line"``) or a dictionary
    (``{"graph": "grid", "rows": 3, "cols": 4}``).  When omitted, the
    complete graph over the instance's agents is used.  Graph constructors
    that take ``num_agents`` receive the instance size automatically.

    ``probes`` declares the observation pipeline attached to every run:
    each entry is a registered probe name (``"temporal"``) or a dictionary
    with parameters (``{"probe": "jsonl", "path": "run-{seed}.jsonl"}``).
    ``history`` selects the run's retention mode
    (``"full"``/``"objective"``/``"none"``; None keeps the legacy
    ``record_trace`` semantics).  Both are plain data, so specs with
    probes still round-trip through JSON and fan out across worker
    processes — every worker constructs its own probe instances.

    ``engine`` selects the execution backend (``"reference"`` — the
    default, byte-identical object-per-agent simulator — or ``"array"``,
    the struct-of-arrays vectorized engine for kernel algorithms at
    100k–1M agents); results are value-identical either way.
    """

    algorithm: str
    environment: str = "static"
    scheduler: str = "maximal"
    algorithm_params: Mapping[str, Any] = field(default_factory=dict)
    environment_params: Mapping[str, Any] = field(default_factory=dict)
    scheduler_params: Mapping[str, Any] = field(default_factory=dict)
    initial_values: tuple | None = None
    value_generator: str | None = None
    generator_params: Mapping[str, Any] = field(default_factory=dict)
    seeds: tuple[int, ...] = (0,)
    max_rounds: int = 1000
    stop_at_convergence: bool = True
    extra_rounds_after_convergence: int = 0
    record_trace: bool = True
    probes: tuple = ()
    history: str | None = None
    engine: str = "reference"
    name: str | None = None

    def __post_init__(self):
        # Normalize the mutable-looking fields so that equal specs compare
        # equal and accidental aliasing cannot leak between specs.
        object.__setattr__(self, "algorithm_params", dict(self.algorithm_params))
        object.__setattr__(self, "environment_params", dict(self.environment_params))
        object.__setattr__(self, "scheduler_params", dict(self.scheduler_params))
        object.__setattr__(self, "generator_params", dict(self.generator_params))
        if self.initial_values is not None:
            object.__setattr__(
                self,
                "initial_values",
                tuple(
                    tuple(value) if isinstance(value, list) else value
                    for value in self.initial_values
                ),
            )
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(
            self,
            "probes",
            tuple(
                copy.deepcopy(dict(entry)) if isinstance(entry, Mapping) else entry
                for entry in self.probes
            ),
        )

    # -- validation ------------------------------------------------------------

    def validate(self) -> "ExperimentSpec":
        """Check the spec against the registries; return self for chaining."""
        ALGORITHMS.entry(self.algorithm)
        ENVIRONMENTS.entry(self.environment)
        SCHEDULERS.entry(self.scheduler)
        ENGINES.entry(self.engine)
        if (self.initial_values is None) == (self.value_generator is None):
            raise SpecificationError(
                "an experiment needs exactly one of initial_values or "
                "value_generator"
            )
        if self.value_generator is not None:
            VALUE_GENERATORS.entry(self.value_generator)
        topology = self.environment_params.get("topology")
        if topology is not None:
            graph, _ = _topology_request(topology)
            GRAPHS.entry(graph)
        if not self.seeds:
            raise SpecificationError("an experiment needs at least one seed")
        if not all(isinstance(seed, int) for seed in self.seeds):
            raise SpecificationError(f"seeds must be integers, got {self.seeds!r}")
        if self.max_rounds < 1:
            raise SpecificationError("max_rounds must be at least 1")
        if self.extra_rounds_after_convergence < 0:
            raise SpecificationError("extra_rounds_after_convergence must be >= 0")
        for entry in self.probes:
            name, params = _probe_request(entry)
            PROBES.entry(name)
            # Probe constructors validate their own parameters eagerly
            # (history modes, temporal operators/predicates, ...), so
            # building a throwaway instance here surfaces a bad JSON spec
            # as one readable error before a batch fans out.
            PROBES.build(name, **params)
            if (
                name == "jsonl"
                and len(self.seeds) > 1
                and "{seed}" not in str(params.get("path", ""))
            ):
                # Every run opens the sink path for writing; without a
                # per-seed placeholder a multi-seed batch silently
                # clobbers all but one run's stream.
                raise SpecificationError(
                    f"jsonl probe path {params.get('path')!r} needs a "
                    f"{{seed}} placeholder when the spec declares "
                    f"{len(self.seeds)} seeds"
                )
            if (
                name == "history"
                and self.history is not None
                and params.get("history", self.history) != self.history
            ):
                # A declared history probe takes over retention, so a
                # conflicting mode would silently win over the spec field.
                raise SpecificationError(
                    f"probe entry {entry!r} pins history="
                    f"{params['history']!r} but the spec declares history="
                    f"{self.history!r}; drop one of the two"
                )
        if self.history is not None and self.history not in HISTORY_MODES:
            raise SpecificationError(
                f"history must be one of {HISTORY_MODES} (or null), "
                f"got {self.history!r}"
            )
        return self

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-data mirror of the spec (JSON-safe for JSON-safe params)."""
        data: dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = [
                    list(v)
                    if isinstance(v, tuple)
                    else copy.deepcopy(dict(v))
                    if isinstance(v, Mapping)
                    else v
                    for v in value
                ]
            elif isinstance(value, Mapping):
                value = copy.deepcopy(dict(value))
            data[spec_field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON)."""
        known = {spec_field.name for spec_field in cls.__dataclass_fields__.values()}
        unknown = set(data) - known
        if unknown:
            raise SpecificationError(
                f"unknown experiment spec fields {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        if "algorithm" not in data:
            raise SpecificationError("an experiment spec needs an 'algorithm'")
        return cls(**dict(data)).validate()

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize to JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    def canonical_json(self) -> str:
        """The spec as canonical JSON: sorted keys, minimal separators.

        Two specs describing the same experiment — however their JSON was
        keyed, indented or whitespaced on the way in — canonicalize to the
        same text, which is what makes :meth:`fingerprint` a usable
        content address.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def fingerprint(self) -> str:
        """SHA-256 content address of the canonical spec JSON.

        Seeded specs are deterministic end to end, so the fingerprint
        identifies the *result* as well as the spec: it is the cache key
        of the experiment service's content-addressed result cache (two
        submissions with equal fingerprints are one simulation).  Any
        semantic field change — a seed, a parameter, the round cap —
        changes the digest; formatting choices never do.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecificationError(f"invalid experiment spec JSON: {error}") from error
        if not isinstance(data, dict):
            raise SpecificationError("an experiment spec must be a JSON object")
        return cls.from_dict(data)

    def with_updates(self, updates: Mapping[str, Any]) -> "ExperimentSpec":
        """Return a copy with dotted-path overrides applied.

        Top-level fields are addressed by name (``"max_rounds"``); entries
        of the parameter dictionaries by dotted path
        (``"environment_params.edge_up_probability"``).
        """
        data = self.to_dict()
        for path, value in updates.items():
            head, _, rest = path.partition(".")
            if head not in data:
                raise SpecificationError(
                    f"cannot override unknown spec field {head!r} (from {path!r})"
                )
            if rest:
                target = data[head]
                if not isinstance(target, dict):
                    raise SpecificationError(
                        f"{head!r} is not a parameter dictionary (from {path!r})"
                    )
                *parents, leaf = rest.split(".")
                for parent in parents:
                    target = target.setdefault(parent, {})
                target[leaf] = value
            else:
                data[head] = value
        return type(self).from_dict(data)

    # -- execution -------------------------------------------------------------

    def resolve_values(self, seed: int | None = None) -> list:
        """The problem instance: explicit values, or the named generator's
        output (the generator receives the run seed unless its parameters
        pin one explicitly)."""
        if self.initial_values is not None:
            return list(self.initial_values)
        assert self.value_generator is not None  # validate() enforces this
        params = dict(self.generator_params)
        if (
            seed is not None
            and "seed" not in params
            and VALUE_GENERATORS.accepts(self.value_generator, "seed")
        ):
            params["seed"] = seed
        return list(VALUE_GENERATORS.build(self.value_generator, **params))

    def build(self, seed: int | None = None) -> Simulator:
        """Materialize the spec into a ready-to-run engine.

        The ``engine`` field selects the execution backend through the
        engine registry: ``"reference"`` (the default) builds the classic
        object-per-agent :class:`Simulator`, ``"array"`` the
        struct-of-arrays
        :class:`~repro.simulation.array_engine.ArrayEngine`.  Both
        implement the same ``Engine`` protocol and produce
        value-identical results for kernel algorithms.

        ``seed`` defaults to the spec's first seed.  Environments whose
        constructor accepts a ``seed`` receive the run seed unless the
        spec pins one, mirroring how ``run_repeated`` passes its per-run
        seed to the environment factory.
        """
        self.validate()
        if seed is None:
            seed = self.seeds[0]
        values = self.resolve_values(seed)

        entry = ALGORITHMS.entry(self.algorithm)
        algorithm_params = dict(self.algorithm_params)
        if entry.prepare is not None:
            algorithm_params = entry.prepare(algorithm_params, list(values))
        algorithm = ALGORITHMS.build(self.algorithm, **algorithm_params)
        if entry.adapt_values is not None:
            values = list(entry.adapt_values(algorithm, values))
        num_agents = len(values)

        environment_params = dict(self.environment_params)
        topology_request = environment_params.pop("topology", None)
        if ENVIRONMENTS.accepts(self.environment, "topology"):
            environment_params["topology"] = _build_topology(
                topology_request, num_agents, seed
            )
        elif topology_request is not None:
            raise SpecificationError(
                f"environment {self.environment!r} does not take a topology"
            )
        elif ENVIRONMENTS.accepts(self.environment, "num_agents"):
            environment_params.setdefault("num_agents", num_agents)
        if "seed" not in environment_params and ENVIRONMENTS.accepts(
            self.environment, "seed"
        ):
            environment_params["seed"] = seed
        environment = ENVIRONMENTS.build(self.environment, **environment_params)

        scheduler = SCHEDULERS.build(self.scheduler, **dict(self.scheduler_params))

        return ENGINES.build(
            self.engine,
            algorithm=algorithm,
            environment=environment,
            initial_values=values,
            scheduler=scheduler,
            seed=seed,
            record_trace=self.record_trace,
        )

    def build_probes(self) -> list[Probe]:
        """Construct fresh probe instances from the spec's declarations.

        Called once per run (and therefore once per batch worker), so
        stateful probes never leak observations between runs or across
        process boundaries.
        """
        instances = []
        for entry in self.probes:
            name, params = _probe_request(entry)
            if name == "history" and "history" not in params:
                # A declared history probe takes over retention in the
                # driver; it must honour the retention the spec selects —
                # the history field, or the legacy record_trace mapping —
                # rather than silently reverting to full retention.
                params["history"] = self.effective_history
            instance = PROBES.build(name, **params)
            attach_spec = getattr(instance, "attach_spec", None)
            if attach_spec is not None:
                # Checkpoint-writing probes embed the originating spec in
                # every file, so `repro resume <path>` can rebuild the
                # whole run from the checkpoint alone.
                attach_spec(self)
            instances.append(instance)
        return instances

    @property
    def effective_history(self) -> str:
        """The retention mode this spec's runs actually use.

        A declared ``history`` probe takes over retention in the engine
        driver, so its pinned mode wins; otherwise the ``history`` field
        applies, falling back to the legacy ``record_trace`` mapping
        (True → ``"full"``, False → ``"objective"``).
        """
        declared = self.history if self.history is not None else (
            "full" if self.record_trace else "objective"
        )
        for entry in self.probes:
            name, params = _probe_request(entry)
            if name == "history":
                return params.get("history", declared)
        return declared

    def run_kwargs(self) -> dict:
        """The engine-driver keyword arguments this spec declares
        (stopping policy, fresh probes, retention mode)."""
        kwargs: dict[str, Any] = {
            "max_rounds": self.max_rounds,
            "stop_at_convergence": self.stop_at_convergence,
            "extra_rounds_after_convergence": self.extra_rounds_after_convergence,
        }
        if self.probes:
            kwargs["probes"] = self.build_probes()
        if self.history is not None:
            kwargs["history"] = self.history
        return kwargs

    def run(self, seed: int | None = None) -> SimulationResult:
        """Build and run one simulation (``seed`` defaults to the first seed)."""
        return self.build(seed).run(**self.run_kwargs())

    def resume(self, checkpoint) -> SimulationResult:
        """Resume a checkpointed run of this spec to completion.

        ``checkpoint`` is a
        :class:`~repro.simulation.checkpoint.RunCheckpoint` or a path to
        one.  The simulator is rebuilt for the checkpoint's seed, restored,
        and driven with this spec's stopping policy and a fresh instance of
        its probe pipeline (whose states the checkpoint restores) — the
        completed :class:`SimulationResult` is byte-identical to the
        uninterrupted run's.
        """
        from .simulation.checkpoint import RunCheckpoint

        checkpoint = RunCheckpoint.load(checkpoint)
        simulator = self.build(checkpoint.seed)
        return simulator.run(**self.run_kwargs(), resume_from=checkpoint)

    def run_all(self) -> list[SimulationResult]:
        """Run the experiment once per declared seed, in order."""
        return [self.run(seed) for seed in self.seeds]

    @property
    def label(self) -> str:
        """The spec's name, or a synthesized ``algorithm@environment`` tag."""
        return self.name or f"{self.algorithm}@{self.environment}"


def _probe_request(entry: Any) -> tuple[str, dict]:
    """Normalize a declarative probe (name or dict) to (name, params)."""
    if isinstance(entry, str):
        return entry, {}
    if isinstance(entry, Mapping):
        params = dict(entry)
        name = params.pop("probe", None)
        if not isinstance(name, str):
            raise SpecificationError(
                f"a probe dictionary needs a 'probe' name, got {entry!r}"
            )
        return name, params
    raise SpecificationError(
        f"a probe must be a registered name or a dictionary, got {entry!r}"
    )


def _topology_request(topology: Any) -> tuple[str, dict]:
    """Normalize a declarative topology (name or dict) to (graph, params)."""
    if isinstance(topology, str):
        return topology, {}
    if isinstance(topology, Mapping):
        params = dict(topology)
        graph = params.pop("graph", None)
        if not isinstance(graph, str):
            raise SpecificationError(
                f"a topology dictionary needs a 'graph' name, got {topology!r}"
            )
        return graph, params
    raise SpecificationError(
        f"topology must be a graph name or a dictionary, got {topology!r}"
    )


def _build_topology(topology: Any, num_agents: int, seed: int | None = None):
    """Build the fixed communication graph for ``num_agents`` agents.

    Stochastic graph constructors (``random``, ``random-connected``)
    receive the run seed unless the spec pins one, so a seeded spec stays
    reproducible end to end."""
    if topology is None:
        topology = "complete"
    graph, params = _topology_request(topology)
    if "num_agents" not in params and GRAPHS.accepts(graph, "num_agents"):
        params["num_agents"] = num_agents
    if seed is not None and "seed" not in params and GRAPHS.accepts(graph, "seed"):
        params["seed"] = seed
    return GRAPHS.build(graph, **params)


def expand_grid(
    base: ExperimentSpec, grid: Mapping[str, Sequence[Any]]
) -> list[ExperimentSpec]:
    """Expand a parameter grid into one spec per combination.

    ``grid`` maps dotted override paths (see
    :meth:`ExperimentSpec.with_updates`) to the values to sweep; the
    cartesian product is taken in the grid's key order.  Each produced
    spec is named ``<base label>[k=v, ...]`` so batch reports stay
    readable.

    >>> specs = expand_grid(spec, {"environment_params.edge_up_probability":
    ...                            [0.1, 0.5, 1.0]})
    """
    specs = [base]
    for path, choices in grid.items():
        choices = list(choices)
        if not choices:
            raise SpecificationError(f"grid entry {path!r} has no values")
        specs = [
            spec.with_updates(
                {
                    path: choice,
                    "name": _grid_name(spec, path, choice),
                }
            )
            for spec in specs
            for choice in choices
        ]
    return specs


def _grid_name(spec: ExperimentSpec, path: str, choice: Any) -> str:
    leaf = path.rsplit(".", 1)[-1]
    base = spec.label
    if base.endswith("]"):
        return f"{base[:-1]}, {leaf}={choice}]"
    return f"{base}[{leaf}={choice}]"


# -- the fluent builder ---------------------------------------------------------


class Experiment:
    """A named experiment: a spec plus conveniences to run it.

    ``Experiment.builder()`` is the programmatic construction path; the
    JSON path is :meth:`from_json` / :meth:`ExperimentSpec.from_json`.
    """

    def __init__(self, spec: ExperimentSpec):
        self.spec = spec.validate()

    @staticmethod
    def builder() -> "ExperimentBuilder":
        """Start a fluent experiment definition."""
        return ExperimentBuilder()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Experiment":
        return cls(ExperimentSpec.from_dict(data))

    @classmethod
    def from_json(cls, text: str) -> "Experiment":
        return cls(ExperimentSpec.from_json(text))

    def simulator(self, seed: int | None = None) -> Simulator:
        """The materialized simulator for one run (see :meth:`ExperimentSpec.build`)."""
        return self.spec.build(seed)

    def run(self, seed: int | None = None) -> SimulationResult:
        return self.spec.run(seed)

    def run_all(self) -> list[SimulationResult]:
        return self.spec.run_all()

    def to_json(self, indent: int | None = 2) -> str:
        return self.spec.to_json(indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Experiment({self.spec.label!r})"


class ExperimentBuilder:
    """Fluent construction of an :class:`ExperimentSpec`.

    Every method returns the builder, so a spec reads as one chained
    sentence; :meth:`build` validates and freezes the result.
    """

    def __init__(self):
        self._fields: dict[str, Any] = {}

    def _set(self, **kwargs: Any) -> "ExperimentBuilder":
        self._fields.update(kwargs)
        return self

    def named(self, name: str) -> "ExperimentBuilder":
        """Name the experiment (used in batch reports and grid labels)."""
        return self._set(name=name)

    def algorithm(self, name: str, **params: Any) -> "ExperimentBuilder":
        """Choose the registered algorithm and its factory parameters."""
        return self._set(algorithm=name, algorithm_params=params)

    def environment(self, name: str, **params: Any) -> "ExperimentBuilder":
        """Choose the registered environment and its constructor parameters."""
        merged = dict(params)
        existing = self._fields.get("environment_params", {})
        if "topology" in existing and "topology" not in merged:
            merged["topology"] = existing["topology"]
        return self._set(environment=name, environment_params=merged)

    def topology(self, graph: str, **params: Any) -> "ExperimentBuilder":
        """Choose the fixed communication graph (a registered constructor)."""
        environment_params = dict(self._fields.get("environment_params", {}))
        environment_params["topology"] = {"graph": graph, **params} if params else graph
        return self._set(environment_params=environment_params)

    def scheduler(self, name: str, **params: Any) -> "ExperimentBuilder":
        """Choose the registered group scheduler."""
        return self._set(scheduler=name, scheduler_params=params)

    def values(self, *values: Any) -> "ExperimentBuilder":
        """Set the problem instance explicitly (varargs or one iterable)."""
        if len(values) == 1 and isinstance(values[0], (list, tuple)):
            values = tuple(values[0])
        return self._set(initial_values=tuple(values), value_generator=None)

    def generator(self, name: str, **params: Any) -> "ExperimentBuilder":
        """Draw the problem instance from a registered value generator."""
        return self._set(
            value_generator=name, generator_params=params, initial_values=None
        )

    def seeds(self, *seeds: int) -> "ExperimentBuilder":
        """Declare the seeds the experiment covers (one run per seed)."""
        if len(seeds) == 1 and isinstance(seeds[0], (list, tuple, range)):
            seeds = tuple(seeds[0])
        return self._set(seeds=tuple(seeds))

    def max_rounds(self, max_rounds: int) -> "ExperimentBuilder":
        """Cap the number of simulated rounds per run."""
        return self._set(max_rounds=max_rounds)

    def stop_at_convergence(self, stop: bool = True) -> "ExperimentBuilder":
        return self._set(stop_at_convergence=stop)

    def extra_rounds_after_convergence(self, rounds: int) -> "ExperimentBuilder":
        return self._set(extra_rounds_after_convergence=rounds)

    def record_trace(self, record: bool = True) -> "ExperimentBuilder":
        return self._set(record_trace=record)

    def probe(self, name: str, **params: Any) -> "ExperimentBuilder":
        """Attach a registered observation probe to every run (repeatable)."""
        entry = {"probe": name, **params} if params else name
        return self._set(probes=(*self._fields.get("probes", ()), entry))

    def history(self, mode: str) -> "ExperimentBuilder":
        """Choose the run's retention mode (``full``/``objective``/``none``)."""
        return self._set(history=mode)

    def engine(self, name: str) -> "ExperimentBuilder":
        """Choose the execution backend (``reference``/``array``)."""
        return self._set(engine=name)

    def build(self) -> ExperimentSpec:
        """Validate and freeze the spec."""
        if "algorithm" not in self._fields:
            raise SpecificationError("an experiment needs an algorithm")
        return ExperimentSpec(**self._fields).validate()

    def experiment(self) -> Experiment:
        """Build and wrap in an :class:`Experiment`."""
        return Experiment(self.build())
