"""Trace-level checks of the paper's specification and conservation law.

Given a simulation trace (a sequence of agent-state multisets), these
routines check the properties §3.2 derives from the specification:

* the **conservation law** ``f(S) = S*`` holds in every reachable state;
* the goal condition ``S = f(S)`` is **stable** once reached;
* the computation **converges**: it eventually reaches (and keeps) the
  target ``S* = f(S(0))``;
* the objective ``h`` is **non-increasing** along the computation and
  strictly decreasing across every state change (the run-time footprint
  of proof obligation PO-1).

All checks work on finite traces produced by the simulator; see
:mod:`repro.temporal.formulas` for the finite-trace reading of the
liveness properties.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.algorithm import SelfSimilarAlgorithm
from ..core.multiset import Multiset
from ..temporal import always, eventually_always, stable
from ..temporal.trace import Trace

__all__ = ["SpecificationReport", "check_specification"]


@dataclass
class SpecificationReport:
    """Outcome of checking one trace against the paper's specification."""

    algorithm_name: str
    conservation_law_holds: bool
    goal_is_stable: bool
    converges: bool
    objective_monotone: bool
    trace_length: int

    @property
    def all_hold(self) -> bool:
        """True when every checked property holds on the trace."""
        return (
            self.conservation_law_holds
            and self.goal_is_stable
            and self.converges
            and self.objective_monotone
        )

    def explain(self) -> str:
        verdict = "PASS" if self.all_hold else "FAIL"
        return (
            f"[{verdict}] {self.algorithm_name}: conservation="
            f"{self.conservation_law_holds}, stable-goal={self.goal_is_stable}, "
            f"converges={self.converges}, monotone-h={self.objective_monotone} "
            f"({self.trace_length} states)"
        )


def check_specification(
    algorithm: SelfSimilarAlgorithm, trace: Trace[Multiset]
) -> SpecificationReport:
    """Check the conservation law, stability, convergence and monotonicity
    of the objective on one recorded trace."""
    if len(trace) == 0:
        raise ValueError("cannot check an empty trace")

    target = algorithm.function(trace.initial)

    conservation = always(trace, lambda states: algorithm.function(states) == target)
    goal_stable = stable(trace, lambda states: algorithm.function(states) == states)
    converges = eventually_always(trace, lambda states: states == target) and (
        trace.final == target
    )

    objective_values = [algorithm.objective(states) for states in trace]
    monotone = True
    for (before, after), (h_before, h_after) in zip(
        trace.pairs(), zip(objective_values, objective_values[1:])
    ):
        if before == after:
            if h_after != h_before:
                monotone = False
                break
        elif not h_after < h_before:
            monotone = False
            break

    return SpecificationReport(
        algorithm_name=algorithm.name,
        conservation_law_holds=conservation,
        goal_is_stable=goal_stable,
        converges=converges,
        objective_monotone=monotone,
        trace_length=len(trace),
    )
