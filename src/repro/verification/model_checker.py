"""Small-scope exhaustive model checking.

For small systems the paper's correctness argument can be checked
exhaustively rather than statistically: enumerate every state reachable
from the initial state by letting *any* group of agents (any subset, any
partition — the environment may allow anything) take the algorithm's
step, and verify on the whole reachable graph that

* the conservation law ``f(S) = f(S(0))`` is an invariant,
* the objective strictly decreases across every state-changing step
  (hence the system cannot cycle),
* every terminal state — one from which no group step changes the state —
  equals the target ``S* = f(S(0))`` (no deadlock short of the goal), and
* the goal state is a fixpoint (stability).

Together these are exactly the ingredients of the paper's correctness
theorem, specialised to the deterministic step rules this library ships.
The state space is finite for every §4 example whose inputs are fixed
(values never leave a finite set), so exhaustive exploration terminates;
a safety cap on the number of explored states keeps accidental misuse
from running away.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..core.algorithm import SelfSimilarAlgorithm
from ..core.errors import VerificationError
from ..core.multiset import Multiset

__all__ = ["ModelCheckReport", "explore_reachable_states"]


@dataclass
class ModelCheckReport:
    """Outcome of exhaustively exploring the reachable state graph."""

    algorithm_name: str
    num_agents: int
    reachable_states: int
    transitions: int
    conservation_violations: list = field(default_factory=list)
    objective_violations: list = field(default_factory=list)
    deadlock_states: list = field(default_factory=list)
    goal_reachable: bool = False
    goal_is_fixpoint: bool = False
    truncated: bool = False

    @property
    def all_hold(self) -> bool:
        """True when every checked property holds on the explored graph."""
        return (
            not self.conservation_violations
            and not self.objective_violations
            and not self.deadlock_states
            and self.goal_reachable
            and self.goal_is_fixpoint
            and not self.truncated
        )

    def explain(self) -> str:
        verdict = "PASS" if self.all_hold else "FAIL"
        notes = []
        if self.truncated:
            notes.append("exploration truncated by state cap")
        if self.conservation_violations:
            notes.append(f"{len(self.conservation_violations)} conservation violations")
        if self.objective_violations:
            notes.append(f"{len(self.objective_violations)} objective violations")
        if self.deadlock_states:
            notes.append(f"{len(self.deadlock_states)} premature deadlocks")
        summary = "; ".join(notes) if notes else "all properties hold"
        return (
            f"[{verdict}] {self.algorithm_name} with {self.num_agents} agents: "
            f"{self.reachable_states} states, {self.transitions} transitions — {summary}"
        )


def explore_reachable_states(
    algorithm: SelfSimilarAlgorithm,
    initial_values: Sequence,
    max_states: int = 20000,
    max_group_size: int | None = None,
    seed: int = 0,
    rng: random.Random | None = None,
) -> ModelCheckReport:
    """Exhaustively explore the reachable state graph of a small instance.

    Parameters
    ----------
    algorithm:
        The algorithm under check.  Its step rule must be deterministic for
        the exploration to cover the real behaviour (all §4 step rules are;
        randomized refinements such as ``minimum_algorithm(partial=True)``
        are explored for one fixed seed only, which still checks the safety
        properties on everything that seed can reach).
    initial_values:
        Problem inputs; the number of agents is their count.
    max_states:
        Safety cap on the number of distinct states explored.
    max_group_size:
        Optionally restrict the group sizes explored (e.g. 2 to model a
        gossip-only environment).  Defaults to the full system size.
    """
    initial_states = tuple(algorithm.initial_states(list(initial_values)))
    num_agents = len(initial_states)
    if num_agents == 0:
        raise VerificationError("model checking needs at least one agent")
    if max_group_size is None:
        max_group_size = num_agents
    target = algorithm.function(Multiset(initial_states))
    rng = rng if rng is not None else random.Random(seed)

    groups: list[tuple[int, ...]] = []
    for size in range(2, max_group_size + 1):
        groups.extend(itertools.combinations(range(num_agents), size))

    report = ModelCheckReport(
        algorithm_name=algorithm.name,
        num_agents=num_agents,
        reachable_states=0,
        transitions=0,
        goal_is_fixpoint=algorithm.is_fixpoint(target),
    )

    seen: set[tuple] = set()
    frontier: list[tuple] = [initial_states]
    seen.add(initial_states)

    while frontier:
        state_vector = frontier.pop()
        report.reachable_states += 1
        bag = Multiset(state_vector)

        if algorithm.function(bag) != target:
            report.conservation_violations.append(state_vector)
        if bag == target:
            report.goal_reachable = True

        has_changing_step = False
        for group in groups:
            group_states = [state_vector[agent] for agent in group]
            new_group_states, judgement = algorithm.apply_group_step(group_states, rng)
            if Multiset(new_group_states) == Multiset(group_states):
                continue
            has_changing_step = True
            report.transitions += 1
            if not judgement.is_strict and algorithm.enforce:
                report.objective_violations.append((state_vector, group))
            successor = list(state_vector)
            for agent, new_state in zip(group, new_group_states):
                successor[agent] = new_state
            successor_vector = tuple(successor)
            if successor_vector not in seen:
                if len(seen) >= max_states:
                    report.truncated = True
                    continue
                seen.add(successor_vector)
                frontier.append(successor_vector)

        if not has_changing_step and bag != target:
            report.deadlock_states.append(state_vector)

    return report
