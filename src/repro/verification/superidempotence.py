"""Super-idempotence audits.

The methodology applies exactly to super-idempotent distributed functions
(§3.4).  This module wraps the property checks of
:mod:`repro.core.functions` into audit routines with readable reports,
used three ways:

* the test-suite asserts that the functions the paper claims are
  super-idempotent (minimum, sum, pair second-smallest, sorting, convex
  hull) pass randomized and exhaustive small-scope checks;
* the FIG-2 / FIG-3 benchmarks search for counterexamples and report how
  easily they are found for the circumscribing circle versus the convex
  hull;
* library users can audit their own functions before building an
  algorithm on them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from ..core.functions import DistributedFunction
from ..core.multiset import Multiset

__all__ = ["SuperIdempotenceReport", "audit_super_idempotence"]


@dataclass
class SuperIdempotenceReport:
    """Outcome of a super-idempotence audit."""

    function_name: str
    trials: int
    idempotence_counterexample: Multiset | None
    super_idempotence_counterexample: tuple[Multiset, Multiset] | None

    @property
    def is_idempotent(self) -> bool:
        """True when no idempotence violation was found."""
        return self.idempotence_counterexample is None

    @property
    def is_super_idempotent(self) -> bool:
        """True when no violation of either property was found."""
        return self.is_idempotent and self.super_idempotence_counterexample is None

    def explain(self) -> str:
        """Return a short human-readable verdict."""
        if not self.is_idempotent:
            return (
                f"{self.function_name}: NOT idempotent "
                f"(counterexample {self.idempotence_counterexample})"
            )
        if not self.is_super_idempotent:
            x, y = self.super_idempotence_counterexample
            return (
                f"{self.function_name}: idempotent but NOT super-idempotent "
                f"(f(X ∪ Y) != f(f(X) ∪ Y) for X={x}, Y={y})"
            )
        return (
            f"{self.function_name}: no violation found in {self.trials} randomized "
            f"trials (consistent with super-idempotence)"
        )


def audit_super_idempotence(
    function: DistributedFunction,
    state_generator: Callable[[random.Random], Hashable],
    trials: int = 300,
    max_size: int = 5,
    seed: int = 0,
    rng: random.Random | None = None,
) -> SuperIdempotenceReport:
    """Randomized audit of idempotence and super-idempotence.

    Parameters
    ----------
    function:
        The distributed function to audit.
    state_generator:
        Callable producing one random agent state (e.g. a random integer, a
        random ``(index, value)`` cell, a random hull state).  Drawing the
        multisets from the same generator as the algorithm's real states
        keeps the audit representative.
    trials:
        Number of random ``(X, Y)`` pairs to test.
    max_size:
        Maximum size of each randomly drawn multiset.
    seed:
        Seed for reproducibility.
    rng:
        Explicit generator; takes precedence over ``seed`` when given
        (``rng=random.Random(s)`` and ``seed=s`` draw identically).
    """
    rng = rng if rng is not None else random.Random(seed)

    idempotence_counterexample: Multiset | None = None
    super_counterexample: tuple[Multiset, Multiset] | None = None

    for _ in range(trials):
        x = Multiset(state_generator(rng) for _ in range(rng.randint(0, max_size)))
        y = Multiset(state_generator(rng) for _ in range(rng.randint(0, max_size)))

        if idempotence_counterexample is None:
            image = function(x)
            if function(image) != image:
                idempotence_counterexample = x

        if super_counterexample is None:
            if function(x | y) != function(function(x) | y):
                super_counterexample = (x, y)

        if idempotence_counterexample is not None and super_counterexample is not None:
            break

    return SuperIdempotenceReport(
        function_name=function.name,
        trials=trials,
        idempotence_counterexample=idempotence_counterexample,
        super_idempotence_counterexample=super_counterexample,
    )
