"""Executable versions of the paper's proof obligations and specifications."""

from .conservation import SpecificationReport, check_specification
from .escape import EscapeAuditReport, audit_escape_obligation, can_escape
from .local_global import (
    GroupTransition,
    LocalToGlobalViolation,
    check_composition,
    search_local_to_global_violation,
)
from .model_checker import ModelCheckReport, explore_reachable_states
from .superidempotence import SuperIdempotenceReport, audit_super_idempotence

__all__ = [
    "SpecificationReport",
    "check_specification",
    "EscapeAuditReport",
    "audit_escape_obligation",
    "can_escape",
    "GroupTransition",
    "LocalToGlobalViolation",
    "check_composition",
    "search_local_to_global_violation",
    "ModelCheckReport",
    "explore_reachable_states",
    "SuperIdempotenceReport",
    "audit_super_idempotence",
]
