"""The escape relation ``#`` and proof obligation PO-2.

``S # G`` ("S escapes G") holds when the environment state ``G`` allows
the agents to move from ``S`` to some different state.  Proof obligation
PO-2 requires every non-optimal agent state to be escapable under at
least one of the environment predicates assumed to hold infinitely often;
combined with the escape postulate, this yields progress.

For the simulated systems of this library, an agent state ``S`` escapes an
environment state ``G`` when some communication group of ``G`` can take a
state-changing step of the algorithm.  These routines make that check
executable on concrete states and audit it over the states visited by a
simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..core.algorithm import SelfSimilarAlgorithm
from ..core.multiset import Multiset
from ..environment.base import EnvironmentState

__all__ = ["can_escape", "EscapeAuditReport", "audit_escape_obligation"]


def can_escape(
    algorithm: SelfSimilarAlgorithm,
    agent_states: Sequence,
    environment_state: EnvironmentState,
    rng: random.Random | None = None,
) -> bool:
    """Return True when ``agent_states # environment_state``.

    The check runs the algorithm's group step on every communication group
    of the environment state and reports whether any of them changes the
    group's state.  (The step rules of this library are deterministic up
    to the supplied generator, so this slightly under-approximates the
    relation ``#`` for exotic randomized rules — which is the safe
    direction: if the check says "escapes", it really does.)
    """
    rng = rng or random.Random(0)
    states = list(agent_states)
    for group in environment_state.communication_groups():
        members = sorted(group)
        group_states = [states[agent] for agent in members]
        new_states, judgement = algorithm.apply_group_step(group_states, rng)
        if judgement.is_strict:
            return True
        if Multiset(new_states) != Multiset(group_states):
            return True
    return False


@dataclass
class EscapeAuditReport:
    """Outcome of auditing PO-2 over the non-optimal states of a run."""

    algorithm_name: str
    states_checked: int
    non_optimal_states: int
    escapable_states: int

    @property
    def obligation_holds(self) -> bool:
        """True when every non-optimal state checked was escapable."""
        return self.non_optimal_states == self.escapable_states

    def explain(self) -> str:
        verdict = "PASS" if self.obligation_holds else "FAIL"
        return (
            f"[{verdict}] {self.algorithm_name}: {self.escapable_states}/"
            f"{self.non_optimal_states} non-optimal states escapable under the "
            f"full topology ({self.states_checked} states checked)"
        )


def audit_escape_obligation(
    algorithm: SelfSimilarAlgorithm,
    visited_states: Sequence[Sequence],
    favourable_environment: EnvironmentState,
    rng: random.Random | None = None,
) -> EscapeAuditReport:
    """Audit PO-2 over a collection of visited agent-state vectors.

    ``favourable_environment`` should be an environment state in which the
    assumed predicates ``Q`` all hold (typically: every topology edge
    available and every agent enabled); the obligation says non-optimal
    states must escape *that* kind of state.  ``rng`` feeds the group
    steps of randomized step rules; omitted, a fixed ``Random(0)`` keeps
    the audit reproducible.
    """
    non_optimal = 0
    escapable = 0
    for states in visited_states:
        if algorithm.is_fixpoint(Multiset(list(states))):
            continue
        non_optimal += 1
        if can_escape(algorithm, list(states), favourable_environment, rng=rng):
            escapable += 1
    return EscapeAuditReport(
        algorithm_name=algorithm.name,
        states_checked=len(list(visited_states)),
        non_optimal_states=non_optimal,
        escapable_states=escapable,
    )
