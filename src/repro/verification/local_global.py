"""Local-to-global property checks (proof obligation PO-3).

The composition theorem of the methodology: if two disjoint groups take
steps that each conserve ``f`` and decrease ``h``, their union's step must
also conserve ``f`` and decrease ``h``.  Conservation composes exactly
when ``f`` is super-idempotent; improvement composes when ``h`` has the
summation form (8) — but not in general, which is the point of the
paper's Figure 1.

This module checks the property on concrete transition pairs and by
randomized search, so both the positive results (squared displacement,
all §4 objectives) and the negative one (out-of-order pairs) are
demonstrated by executable evidence rather than by assertion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from ..core.functions import DistributedFunction
from ..core.multiset import Multiset
from ..core.objective import ObjectiveFunction

__all__ = [
    "GroupTransition",
    "LocalToGlobalViolation",
    "check_composition",
    "search_local_to_global_violation",
]


@dataclass(frozen=True)
class GroupTransition:
    """A candidate transition of one group: its states before and after."""

    before: Multiset
    after: Multiset

    @classmethod
    def of(cls, before, after) -> "GroupTransition":
        return cls(
            before if isinstance(before, Multiset) else Multiset(before),
            after if isinstance(after, Multiset) else Multiset(after),
        )


@dataclass(frozen=True)
class LocalToGlobalViolation:
    """A witness that two valid group steps do not compose."""

    transition_b: GroupTransition
    transition_c: GroupTransition
    conserves_f: bool
    h_before_union: float
    h_after_union: float

    def explain(self) -> str:
        if not self.conserves_f:
            return (
                "union step breaks conservation: f(S_B∪C) != f(S'_B∪C) even though "
                "both group steps conserve f (f is not super-idempotent)"
            )
        return (
            "union step is not an improvement: "
            f"h(S_B∪C) = {self.h_before_union} <= h(S'_B∪C) = {self.h_after_union} "
            "even though both group steps strictly improve their groups"
        )


def _is_valid_group_step(
    function: DistributedFunction,
    objective: ObjectiveFunction,
    transition: GroupTransition,
) -> bool:
    """A valid D-step: stutter, or conserve ``f`` and strictly decrease ``h``."""
    if transition.before == transition.after:
        return True
    return function.conserves(transition.before, transition.after) and objective.is_improvement(
        transition.before, transition.after
    )


def check_composition(
    function: DistributedFunction,
    objective: ObjectiveFunction,
    transition_b: GroupTransition,
    transition_c: GroupTransition,
) -> LocalToGlobalViolation | None:
    """Check PO-3 on one concrete pair of disjoint-group transitions.

    Both transitions must individually be valid ``D`` steps (the caller's
    responsibility — a :class:`ValueError` is raised otherwise, because a
    "violation" built from invalid steps would be meaningless).  Returns a
    violation witness, or None when the union step is valid.
    """
    for name, transition in (("B", transition_b), ("C", transition_c)):
        if not _is_valid_group_step(function, objective, transition):
            raise ValueError(
                f"transition of group {name} is not itself a valid D step; "
                "the local-to-global property only quantifies over valid steps"
            )

    union_before = transition_b.before | transition_c.before
    union_after = transition_b.after | transition_c.after
    if union_before == union_after:
        return None

    conserves = function.conserves(union_before, union_after)
    h_before = objective(union_before)
    h_after = objective(union_after)
    improves = objective.is_improvement(union_before, union_after)

    if conserves and improves:
        return None
    return LocalToGlobalViolation(
        transition_b=transition_b,
        transition_c=transition_c,
        conserves_f=conserves,
        h_before_union=h_before,
        h_after_union=h_after,
    )


def search_local_to_global_violation(
    function: DistributedFunction,
    objective: ObjectiveFunction,
    state_generator: Callable[[random.Random], Hashable],
    step_generator: Callable[[Sequence[Hashable], random.Random], Sequence[Hashable]],
    trials: int = 500,
    max_group_size: int = 5,
    seed: int = 0,
    rng: random.Random | None = None,
) -> LocalToGlobalViolation | None:
    """Randomized search for a PO-3 violation.

    Random disjoint groups ``B`` and ``C`` are drawn, ``step_generator``
    proposes a transition for each, invalid proposals are discarded, and
    the surviving pairs are checked for composition.  Returns the first
    violation found, or None.  An explicit ``rng`` takes precedence over
    ``seed``: ``rng=random.Random(s)`` and ``seed=s`` draw identically.
    """
    rng = rng if rng is not None else random.Random(seed)
    for _ in range(trials):
        size_b = rng.randint(1, max_group_size)
        size_c = rng.randint(1, max_group_size)
        before_b = [state_generator(rng) for _ in range(size_b)]
        before_c = [state_generator(rng) for _ in range(size_c)]
        after_b = list(step_generator(before_b, rng))
        after_c = list(step_generator(before_c, rng))

        transition_b = GroupTransition.of(before_b, after_b)
        transition_c = GroupTransition.of(before_c, after_c)
        if not _is_valid_group_step(function, objective, transition_b):
            continue
        if not _is_valid_group_step(function, objective, transition_c):
            continue
        violation = check_composition(function, objective, transition_b, transition_c)
        if violation is not None:
            return violation
    return None
