"""repro — self-similar algorithms for dynamic distributed systems.

A reproduction of K. Mani Chandy and Michel Charpentier, *Self-Similar
Algorithms for Dynamic Distributed Systems* (ICDCS 2007).

The library has five layers:

* :mod:`repro.core` — the mathematical machinery: multisets, distributed
  functions ``f`` (idempotence, super-idempotence), objective functions
  ``h``, the constrained-optimization relation ``D`` and the
  :class:`SelfSimilarAlgorithm` bundle;
* :mod:`repro.environment` / :mod:`repro.agents` — the system model:
  topologies, dynamic/adversarial/mobile environments, agents, groups and
  group schedulers;
* :mod:`repro.simulation` — the round-based simulator (and an asynchronous
  message-passing runtime) that executes the paper's transition relation
  and records traces;
* :mod:`repro.algorithms` — the paper's worked examples: minimum, sum,
  average, second smallest, k-th smallest, sorting, convex hull and the
  (unsound) direct circumscribing circle;
* :mod:`repro.verification` / :mod:`repro.baselines` — executable checks
  of the paper's proof obligations, and the classical baselines
  (snapshots, gossip, spanning trees) the paper contrasts itself with;
* :mod:`repro.registry` / :mod:`repro.experiment` — the declarative
  experiment layer: string-keyed registries of every algorithm,
  environment, scheduler and topology, and the frozen JSON-round-trippable
  :class:`ExperimentSpec` that names them, executed one run at a time or
  fanned out across a process pool by
  :class:`~repro.simulation.batch.BatchRunner`;
* :mod:`repro.faults` — deterministic fault injection (seeded
  :class:`FaultPlan` crash/corruption/flaky-transport schedules) and the
  self-healing it proves out: stamped checkpoints with verified
  fallback, retry policies with deterministic jitter, and the
  ``repro chaos`` byte-identical-recovery harness.

Quickstart (declarative — experiments as data)::

    from repro import Experiment

    spec = (Experiment.builder()
            .algorithm("minimum")
            .environment("churn", edge_up_probability=0.3)
            .values(5, 3, 9, 1, 7, 2, 8, 4)
            .seeds(0, 1, 2)
            .max_rounds(500)
            .build())
    result = spec.run(seed=0)
    assert result.converged and result.output == 1
    spec_json = spec.to_json()        # persist; later: repro run spec.json

Quickstart (hand-wired — direct object construction)::

    from repro import Simulator, minimum_algorithm
    from repro.environment import RandomChurnEnvironment, complete_graph

    algorithm = minimum_algorithm()
    environment = RandomChurnEnvironment(complete_graph(8), edge_up_probability=0.3)
    simulator = Simulator(algorithm, environment,
                          initial_values=[5, 3, 9, 1, 7, 2, 8, 4], seed=42)
    result = simulator.run(max_rounds=500)
    assert result.converged and result.output == 1
"""

from .core import (
    ConservationViolation,
    DistributedFunction,
    ImprovementViolation,
    Multiset,
    MutableMultiset,
    ObjectiveFunction,
    OptimizationRelation,
    ReproError,
    SelfSimilarAlgorithm,
    SpecificationError,
    StepJudgement,
    StepKind,
    SummationObjective,
)
from .algorithms import (
    average_algorithm,
    circumscribing_circle_algorithm,
    convex_hull_algorithm,
    kth_smallest_algorithm,
    maximum_algorithm,
    minimum_algorithm,
    second_smallest_algorithm,
    sorting_algorithm,
    summation_algorithm,
)
from .simulation import (
    BatchResult,
    BatchRunner,
    CheckpointProbe,
    ConvergenceProbe,
    Engine,
    HistoryProbe,
    JSONLSink,
    MergeMessagePassingSimulator,
    ObjectiveProbe,
    Probe,
    RoundRecord,
    RunCheckpoint,
    SimulationResult,
    Simulator,
    StatsProbe,
    TemporalProbe,
    TemporalProperty,
    aggregate,
    resume_run,
    run_engine,
    run_repeated,
    sweep,
)
from .experiment import Experiment, ExperimentBuilder, ExperimentSpec, expand_grid
from .faults import (
    FaultCrashProbe,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    run_chaos,
)
from .registry import (
    ALGORITHMS as ALGORITHM_REGISTRY,
    ENVIRONMENTS as ENVIRONMENT_REGISTRY,
    GRAPHS as GRAPH_REGISTRY,
    PROBES as PROBE_REGISTRY,
    SCHEDULERS as SCHEDULER_REGISTRY,
    VALUE_GENERATORS as VALUE_GENERATOR_REGISTRY,
    available,
)

__version__ = "1.0.0"

__all__ = [
    "ConservationViolation",
    "DistributedFunction",
    "ImprovementViolation",
    "Multiset",
    "MutableMultiset",
    "ObjectiveFunction",
    "OptimizationRelation",
    "ReproError",
    "SelfSimilarAlgorithm",
    "SpecificationError",
    "StepJudgement",
    "StepKind",
    "SummationObjective",
    "average_algorithm",
    "circumscribing_circle_algorithm",
    "convex_hull_algorithm",
    "kth_smallest_algorithm",
    "maximum_algorithm",
    "minimum_algorithm",
    "second_smallest_algorithm",
    "sorting_algorithm",
    "summation_algorithm",
    "MergeMessagePassingSimulator",
    "SimulationResult",
    "Simulator",
    "aggregate",
    "run_repeated",
    "sweep",
    "BatchResult",
    "BatchRunner",
    "RoundRecord",
    "Engine",
    "Probe",
    "HistoryProbe",
    "ObjectiveProbe",
    "ConvergenceProbe",
    "TemporalProbe",
    "TemporalProperty",
    "StatsProbe",
    "JSONLSink",
    "CheckpointProbe",
    "RunCheckpoint",
    "resume_run",
    "run_engine",
    "Experiment",
    "ExperimentBuilder",
    "ExperimentSpec",
    "expand_grid",
    "FaultCrashProbe",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "run_chaos",
    "ALGORITHM_REGISTRY",
    "ENVIRONMENT_REGISTRY",
    "GRAPH_REGISTRY",
    "PROBE_REGISTRY",
    "SCHEDULER_REGISTRY",
    "VALUE_GENERATOR_REGISTRY",
    "available",
    "__version__",
]
