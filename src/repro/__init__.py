"""repro — self-similar algorithms for dynamic distributed systems.

A reproduction of K. Mani Chandy and Michel Charpentier, *Self-Similar
Algorithms for Dynamic Distributed Systems* (ICDCS 2007).

The library has five layers:

* :mod:`repro.core` — the mathematical machinery: multisets, distributed
  functions ``f`` (idempotence, super-idempotence), objective functions
  ``h``, the constrained-optimization relation ``D`` and the
  :class:`SelfSimilarAlgorithm` bundle;
* :mod:`repro.environment` / :mod:`repro.agents` — the system model:
  topologies, dynamic/adversarial/mobile environments, agents, groups and
  group schedulers;
* :mod:`repro.simulation` — the round-based simulator (and an asynchronous
  message-passing runtime) that executes the paper's transition relation
  and records traces;
* :mod:`repro.algorithms` — the paper's worked examples: minimum, sum,
  average, second smallest, k-th smallest, sorting, convex hull and the
  (unsound) direct circumscribing circle;
* :mod:`repro.verification` / :mod:`repro.baselines` — executable checks
  of the paper's proof obligations, and the classical baselines
  (snapshots, gossip, spanning trees) the paper contrasts itself with.

Quickstart::

    from repro import Simulator, minimum_algorithm
    from repro.environment import RandomChurnEnvironment, complete_graph

    algorithm = minimum_algorithm()
    environment = RandomChurnEnvironment(complete_graph(8), edge_up_probability=0.3)
    simulator = Simulator(algorithm, environment,
                          initial_values=[5, 3, 9, 1, 7, 2, 8, 4], seed=42)
    result = simulator.run(max_rounds=500)
    assert result.converged and result.output == 1
"""

from .core import (
    ConservationViolation,
    DistributedFunction,
    ImprovementViolation,
    Multiset,
    ObjectiveFunction,
    OptimizationRelation,
    ReproError,
    SelfSimilarAlgorithm,
    SpecificationError,
    StepJudgement,
    StepKind,
    SummationObjective,
)
from .algorithms import (
    average_algorithm,
    circumscribing_circle_algorithm,
    convex_hull_algorithm,
    kth_smallest_algorithm,
    maximum_algorithm,
    minimum_algorithm,
    second_smallest_algorithm,
    sorting_algorithm,
    summation_algorithm,
)
from .simulation import (
    MergeMessagePassingSimulator,
    SimulationResult,
    Simulator,
    aggregate,
    run_repeated,
    sweep,
)

__version__ = "1.0.0"

__all__ = [
    "ConservationViolation",
    "DistributedFunction",
    "ImprovementViolation",
    "Multiset",
    "ObjectiveFunction",
    "OptimizationRelation",
    "ReproError",
    "SelfSimilarAlgorithm",
    "SpecificationError",
    "StepJudgement",
    "StepKind",
    "SummationObjective",
    "average_algorithm",
    "circumscribing_circle_algorithm",
    "convex_hull_algorithm",
    "kth_smallest_algorithm",
    "maximum_algorithm",
    "minimum_algorithm",
    "second_smallest_algorithm",
    "sorting_algorithm",
    "summation_algorithm",
    "MergeMessagePassingSimulator",
    "SimulationResult",
    "Simulator",
    "aggregate",
    "run_repeated",
    "sweep",
    "__version__",
]
