"""Classical baselines the paper contrasts self-similar algorithms with."""

from .base import Baseline, BaselineResult
from .gossip import GossipFloodingBaseline
from .snapshot import SnapshotAggregationBaseline
from .tree_aggregation import SpanningTreeAggregationBaseline

__all__ = [
    "Baseline",
    "BaselineResult",
    "GossipFloodingBaseline",
    "SnapshotAggregationBaseline",
    "SpanningTreeAggregationBaseline",
]
