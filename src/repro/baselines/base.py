"""Common interface of the baseline algorithms.

The paper's related-work section contrasts self-similar algorithms with
classical approaches: repeated global snapshots / group communication
(efficient in static systems, inefficient in dynamic ones), flooding the
full value set, and fixed coordination structures such as spanning trees.
Experiment E5 runs those baselines under exactly the same environments as
the self-similar algorithms; this module defines the small interface they
share.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..environment.base import Environment

__all__ = ["BaselineResult", "Baseline"]


@dataclass
class BaselineResult:
    """Outcome of one baseline run, aligned with :class:`SimulationResult`
    where it makes sense (convergence flag and round, message accounting)."""

    converged: bool
    convergence_round: int | None
    rounds_executed: int
    output: Any
    messages_sent: int = 0
    metadata: dict = field(default_factory=dict)


class Baseline(ABC):
    """A non-self-similar algorithm run for comparison purposes."""

    name: str = "baseline"

    @abstractmethod
    def run(
        self,
        environment: Environment,
        initial_values: Sequence[Any],
        max_rounds: int = 1000,
        seed: int | None = None,
        rng: random.Random | None = None,
    ) -> BaselineResult:
        """Execute the baseline under ``environment`` and return its result.

        An explicit ``rng`` takes precedence over ``seed``;
        ``rng=random.Random(s)`` and ``seed=s`` draw identically."""

    def describe(self) -> str:
        """One-line description for benchmark reports."""
        return self.name


def reduce_values(values: Sequence[Any], reduce_fn: Callable[[Sequence[Any]], Any]) -> Any:
    """Helper used by baselines to compute the global answer from all values."""
    return reduce_fn(list(values))
