"""Spanning-tree aggregation baseline.

A classical static-network aggregation scheme: build a spanning tree of
the communication topology once, aggregate values from the leaves to the
root along tree edges, then broadcast the result from the root back down.
Each tree edge can carry its (single) message in a round only when the
edge is available and both endpoints are enabled.

The structure is fixed up front — the scheme does not adapt when the
environment withholds precisely the edges the tree depends on.  On a
static network it completes in ``O(depth)`` rounds with ``O(N)`` messages,
beating both gossip and the self-similar algorithms on communication; as
churn rises its completion time degrades faster than the self-similar
algorithms' (every tree edge is a potential bottleneck, and no alternative
path is ever used), which is the comparison experiment E5 draws out.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Sequence

from ..core.errors import EnvironmentError_
from ..environment.base import Environment
from .base import Baseline, BaselineResult

__all__ = ["SpanningTreeAggregationBaseline"]


class SpanningTreeAggregationBaseline(Baseline):
    """Aggregate up a fixed spanning tree, then broadcast down."""

    def __init__(self, reduce_fn: Callable[[Sequence[Any]], Any], root: int = 0):
        self.reduce_fn = reduce_fn
        self.root = root
        self.name = "spanning-tree aggregation"

    def _build_tree(self, environment: Environment) -> dict[int, int]:
        """BFS spanning tree of the full topology: child -> parent map."""
        topology = environment.topology
        if not topology.is_connected():
            raise EnvironmentError_(
                "spanning-tree aggregation needs a connected base topology"
            )
        parent: dict[int, int] = {self.root: self.root}
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            for neighbour in sorted(topology.neighbors(node)):
                if neighbour not in parent:
                    parent[neighbour] = node
                    queue.append(neighbour)
        return parent

    def run(
        self,
        environment: Environment,
        initial_values: Sequence[Any],
        max_rounds: int = 1000,
        seed: int | None = None,
        rng: random.Random | None = None,
    ) -> BaselineResult:
        rng = rng if rng is not None else random.Random(seed)
        num_agents = environment.num_agents
        environment.reset()
        parent = self._build_tree(environment)
        children: dict[int, set[int]] = {agent: set() for agent in range(num_agents)}
        for child, par in parent.items():
            if child != par:
                children[par].add(child)

        # Aggregation state: the partial reductions each node still has to
        # combine (its own value plus one contribution per child), and
        # whether it has already sent its contribution up.
        pending_children: dict[int, set[int]] = {
            agent: set(children[agent]) for agent in range(num_agents)
        }
        contributions: dict[int, list[Any]] = {
            agent: [initial_values[agent]] for agent in range(num_agents)
        }
        sent_up: set[int] = set()
        has_result: set[int] = set()
        result_value: Any = None
        messages = 0
        convergence_round: int | None = None
        rounds = 0

        for round_index in range(max_rounds):
            if convergence_round is not None:
                break
            rounds += 1
            state = environment.advance(round_index, rng)

            # Phase 1: convergecast — a node whose children have all reported
            # sends its partial aggregate to its parent when the tree edge is up.
            for agent in range(num_agents):
                if agent == self.root or agent in sent_up:
                    continue
                if pending_children[agent]:
                    continue
                par = parent[agent]
                if not state.can_communicate(agent, par):
                    continue
                messages += 1
                contributions[par].append(self.reduce_fn(contributions[agent]))
                pending_children[par].discard(agent)
                sent_up.add(agent)

            # Root completes the aggregate once every child has reported.
            if result_value is None and not pending_children[self.root]:
                result_value = self.reduce_fn(contributions[self.root])
                has_result.add(self.root)

            # Phase 2: broadcast — nodes holding the result push it to
            # children whose tree edge is up this round.
            if result_value is not None:
                for agent in sorted(has_result):
                    for child in sorted(children[agent] - has_result):
                        if state.can_communicate(agent, child):
                            messages += 1
                            has_result.add(child)

            if len(has_result) == num_agents:
                convergence_round = round_index + 1

        return BaselineResult(
            converged=convergence_round is not None,
            convergence_round=convergence_round,
            rounds_executed=rounds,
            output=result_value if convergence_round is not None else None,
            messages_sent=messages,
            metadata={
                "baseline": self.name,
                "root": self.root,
                "tree_edges": num_agents - 1,
                "environment": environment.describe(),
            },
        )
