"""Repeated global-snapshot baseline.

The paper's related-work discussion: "a methodology for solving the
problems discussed in our paper is for each agent to take repeated global
snapshots or to employ group communication protocols [...]; these
approaches work well in systems that are relatively static but are
inefficient in dynamic systems."

This baseline models that strategy at the level of abstraction relevant to
the comparison: a coordinator repeatedly attempts to assemble a consistent
global snapshot of all agent values and then disseminate the computed
answer to everyone.  An attempt succeeds in a round only when the round's
communication graph lets the coordinator reach every agent — i.e. every
agent is enabled and the available edges connect the whole system.  One
successful round is charged for the collection phase and one for the
dissemination phase (they may not be the same round).

Under a static environment the baseline finishes in two rounds — faster
than the self-similar algorithms' gradual convergence.  Under churn or
partitions, rounds in which the *whole* system is simultaneously reachable
become rare or impossible, and the baseline stalls even though every edge
keeps appearing infinitely often — exactly the failure mode the paper
attributes to globally coordinated approaches.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from ..environment.base import Environment, connected_components
from .base import Baseline, BaselineResult

__all__ = ["SnapshotAggregationBaseline"]


class SnapshotAggregationBaseline(Baseline):
    """Coordinator-driven snapshot-and-broadcast aggregation."""

    def __init__(self, reduce_fn: Callable[[Sequence[Any]], Any], coordinator: int = 0):
        self.reduce_fn = reduce_fn
        self.coordinator = coordinator
        self.name = "global snapshot"

    def run(
        self,
        environment: Environment,
        initial_values: Sequence[Any],
        max_rounds: int = 1000,
        seed: int | None = None,
        rng: random.Random | None = None,
    ) -> BaselineResult:
        rng = rng if rng is not None else random.Random(seed)
        num_agents = environment.num_agents
        environment.reset()
        answer = self.reduce_fn(list(initial_values))

        collected = False
        disseminated = False
        convergence_round: int | None = None
        messages = 0
        rounds = 0

        for round_index in range(max_rounds):
            if disseminated:
                break
            rounds += 1
            state = environment.advance(round_index, rng)
            all_enabled = len(state.enabled_agents) == num_agents
            components = connected_components(
                state.enabled_agents, state.effective_edges()
            )
            fully_connected = all_enabled and len(components) == 1

            if not fully_connected:
                # The coordinator keeps (re)trying: each attempt floods
                # marker messages over whatever edges exist this round.
                messages += 2 * len(state.effective_edges())
                continue

            messages += 2 * (num_agents - 1)
            if not collected:
                collected = True
            else:
                disseminated = True
                convergence_round = round_index + 1

        return BaselineResult(
            converged=disseminated,
            convergence_round=convergence_round,
            rounds_executed=rounds,
            output=answer if disseminated else None,
            messages_sent=messages,
            metadata={
                "baseline": self.name,
                "coordinator": self.coordinator,
                "environment": environment.describe(),
            },
        )
