"""Full-information gossip (flooding) baseline.

Every agent remembers every ``(agent id, value)`` pair it has heard about
and forwards its whole knowledge set to every neighbour whenever a link is
available.  An agent can compute the answer locally once it has heard from
all ``N`` agents; the run converges when every agent has.

Gossip tolerates dynamism as well as the self-similar algorithms do — the
knowledge sets are themselves a super-idempotent merge — but it pays for
it: per-agent memory and per-message payload grow linearly with the system
size, whereas the paper's algorithms carry constant-size state (one value,
one pair, one hull).  Experiment E5 reports both the convergence rounds
and the payload volume so the trade-off is visible.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from ..environment.base import Environment
from .base import Baseline, BaselineResult

__all__ = ["GossipFloodingBaseline"]


class GossipFloodingBaseline(Baseline):
    """Flood (agent, value) pairs until everyone knows every value."""

    def __init__(self, reduce_fn: Callable[[Sequence[Any]], Any]):
        self.reduce_fn = reduce_fn
        self.name = "full-information gossip"

    def run(
        self,
        environment: Environment,
        initial_values: Sequence[Any],
        max_rounds: int = 1000,
        seed: int | None = None,
        rng: random.Random | None = None,
    ) -> BaselineResult:
        rng = rng if rng is not None else random.Random(seed)
        num_agents = environment.num_agents
        environment.reset()

        knowledge: list[dict[int, Any]] = [
            {agent: initial_values[agent]} for agent in range(num_agents)
        ]
        messages = 0
        payload_entries = 0
        convergence_round: int | None = None
        rounds = 0

        def everyone_knows_everything() -> bool:
            return all(len(known) == num_agents for known in knowledge)

        if everyone_knows_everything():
            convergence_round = 0

        for round_index in range(max_rounds):
            if convergence_round is not None:
                break
            rounds += 1
            state = environment.advance(round_index, rng)

            # Exchange on every available edge between enabled agents; both
            # directions, full knowledge sets (snapshotted before merging so
            # the round is symmetric).
            snapshots = [dict(known) for known in knowledge]
            for a, b in state.effective_edges():
                for sender, receiver in ((a, b), (b, a)):
                    messages += 1
                    payload_entries += len(snapshots[sender])
                    knowledge[receiver].update(snapshots[sender])

            if everyone_knows_everything():
                convergence_round = round_index + 1

        converged = convergence_round is not None
        outputs = [
            self.reduce_fn([known[agent] for agent in sorted(known)])
            for known in knowledge
        ]
        return BaselineResult(
            converged=converged,
            convergence_round=convergence_round,
            rounds_executed=rounds,
            output=outputs[0] if converged else None,
            messages_sent=messages,
            metadata={
                "baseline": self.name,
                "payload_entries": payload_entries,
                "environment": environment.describe(),
                "per_agent_memory": num_agents,
            },
        )
